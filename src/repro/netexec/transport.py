"""AsyncioTransport: the `Network` interface over real sockets.

One process, one event loop, one listening socket per validator (Unix
domain sockets by default, local TCP optionally) and one outbound
connection per ordered validator pair.  The transport implements the
exact surface :class:`~repro.node.validator.ValidatorNode` consumes
from :class:`~repro.network.transport.Network` — ``register``/``send``/
``broadcast``/``multicast``/``set_crashed``/``is_crashed``/``stats``/
``node_ids``/``region_of``/``install_observability`` plus the
``.simulator`` timing facade — so the full validator stack runs over
sockets unmodified.

Mechanics:

* **Framing** — every message crosses the wire as a length-prefixed
  canonical frame (``repro/netexec/codec.py``).  The first frame on a
  connection is a :class:`~repro.netexec.codec.Hello` naming the
  sender.  A truncated, oversized, or garbage frame raises at the codec
  boundary and the reader closes the connection with a logged reason
  (``transport.events``) — no hang, no crash.
* **Backpressure** — each outbound link holds a bounded frame queue
  drained by a writer task (``write`` + ``drain``).  A full queue sheds
  the frame and counts it (``stats.messages_dropped``); the protocol's
  synchronizer repairs the loss.  The default capacity is far above
  anything smoke-scale traffic reaches, so the bound is an overload
  valve, not a steady-state drop source.
* **Connection retry with deadline** — outbound connects retry with
  exponential backoff until ``connect_deadline``; the terminal failure
  is an :class:`OSError` carrying the peer's errno and address, which
  ``repro.cliutil.run_guarded`` surfaces verbatim.
* **Crash semantics** — ``set_crashed`` mirrors the simulator: frames
  already queued are in flight and still drain to their destinations
  (drain-then-close), new sends from the crashed validator are refused
  at the source, and inbound traffic to it is counted as dropped.  The
  listening socket closes so no new connections reach a dead validator.
* **Fault hook** — ``drop_filter`` is a synchronous predicate applied
  at the send boundary, the seam where loss/partition fault windows
  plug into the socket backend.

Wall-clock and socket reads are confined to this module, ``clock``, and
``runner`` — all three are DET002-allowlisted and sit outside the
digest purity closure.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.netexec.clock import MonotonicScheduler
from repro.netexec.codec import (
    CodecError,
    FrameError,
    Hello,
    MAX_FRAME_BYTES,
    _HEADER,
    decode,
    encode_frame,
)
from repro.network.transport import NetworkStats
from repro.types import Region, ValidatorId

# Frames per outbound link before the transport starts shedding.  Sized
# as an overload valve: smoke-scale runs peak at a few hundred queued
# frames per link, two orders of magnitude below the bound.
DEFAULT_LINK_CAPACITY = 10_000

DEFAULT_CONNECT_DEADLINE = 5.0

_EOF = object()
_CLOSE = object()


async def read_frame(reader: asyncio.StreamReader) -> Any:
    """Read one length-prefixed frame; ``_EOF`` on clean end-of-stream.

    Raises :class:`FrameError` for truncated headers/bodies and
    out-of-bounds lengths, :class:`CodecError` for garbage bodies — the
    caller closes the connection with the reason.
    """
    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return _EOF
        raise FrameError(
            f"connection closed mid-header ({len(error.partial)}/4 bytes)"
        ) from error
    (length,) = _HEADER.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} outside (0, {MAX_FRAME_BYTES}]")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError(
            f"connection closed mid-frame ({len(error.partial)}/{length} bytes)"
        ) from error
    return decode(body)


class PeerLink:
    """One outbound connection: bounded frame queue + writer task."""

    def __init__(
        self,
        owner: ValidatorId,
        peer: ValidatorId,
        connect: Callable[[], "asyncio.Future"],
        capacity: int,
        on_event: Callable[[str], None],
    ) -> None:
        self.owner = owner
        self.peer = peer
        self._connect = connect
        self._on_event = on_event
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=capacity)
        self.frames_sent = 0
        self.frames_dropped = 0
        self.closing = False
        self.task: Optional[asyncio.Task] = None
        self.connected: Optional[asyncio.Future] = None

    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        self.connected = loop.create_future()
        self.task = loop.create_task(
            self._run(), name=f"netexec-link-{self.owner}-{self.peer}"
        )

    def send_frame(self, frame: bytes) -> bool:
        """Enqueue without blocking; ``False`` means the frame was shed."""
        if self.closing:
            self.frames_dropped += 1
            return False
        try:
            self.queue.put_nowait(frame)
        except asyncio.QueueFull:
            self.frames_dropped += 1
            self._on_event(
                f"link {self.owner}->{self.peer}: send queue full "
                f"({self.queue.maxsize} frames), shedding"
            )
            return False
        return True

    async def _run(self) -> None:
        try:
            reader, writer = await self._connect()
        except OSError as error:
            self.closing = True
            if not self.connected.done():
                self.connected.set_exception(error)
            return
        try:
            writer.write(encode_frame(Hello(self.owner)))
            await writer.drain()
            if not self.connected.done():
                self.connected.set_result(True)
            while True:
                frame = await self.queue.get()
                if frame is _CLOSE:
                    break
                writer.write(frame)
                await writer.drain()
                self.frames_sent += 1
        except (ConnectionError, OSError) as error:
            self.closing = True
            self._on_event(f"link {self.owner}->{self.peer} failed: {error}")
        finally:
            self.closing = True
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def close(self) -> None:
        """Drain-then-close: frames already queued still go out first."""
        if self.task is None:
            return
        if not self.closing:
            self.closing = True
            try:
                self.queue.put_nowait(_CLOSE)
            except asyncio.QueueFull:
                self.task.cancel()
        try:
            await self.task
        except (asyncio.CancelledError, OSError):
            pass


class _Endpoint:
    __slots__ = ("node_id", "region", "handler", "crashed", "server", "address")

    def __init__(self, node_id: ValidatorId, region: Region, handler) -> None:
        self.node_id = node_id
        self.region = region
        self.handler = handler
        self.crashed = False
        self.server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Any] = None


class AsyncioTransport:
    """The socket-backed `Network`.  See the module docstring."""

    def __init__(
        self,
        scheduler: MonotonicScheduler,
        socket_dir: str,
        family: str = "uds",
        connect_deadline: float = DEFAULT_CONNECT_DEADLINE,
        link_capacity: int = DEFAULT_LINK_CAPACITY,
    ) -> None:
        if family not in ("uds", "tcp"):
            raise NetworkError(f"unknown transport family {family!r} (uds or tcp)")
        self.simulator = scheduler
        self.stats = NetworkStats()
        self.family = family
        self.socket_dir = socket_dir
        self.connect_deadline = connect_deadline
        self.link_capacity = link_capacity
        # Loss/partition seam: a predicate over (sender, recipient,
        # encoded frame); return True to drop at the socket boundary.
        self.drop_filter: Optional[Callable[[ValidatorId, ValidatorId, bytes], bool]] = None
        # Human-readable transport events (connection closes, sheds) and
        # handler exceptions (fatal: surfaced by the runner).
        self.events: List[str] = []
        self.handler_errors: List[BaseException] = []
        self.tracer = None
        self._endpoints: Dict[ValidatorId, _Endpoint] = {}
        self._links: Dict[Tuple[ValidatorId, ValidatorId], PeerLink] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._crash_closers: List[asyncio.Task] = []

    # -- registration (mirrors Network.register) ---------------------------------

    def register(self, node_id: ValidatorId, region: Region, handler) -> None:
        if node_id in self._endpoints:
            raise NetworkError(f"node {node_id} is already registered")
        self._endpoints[node_id] = _Endpoint(node_id, region, handler)

    @property
    def node_ids(self) -> Tuple[ValidatorId, ...]:
        return tuple(sorted(self._endpoints))

    def region_of(self, node_id: ValidatorId) -> Region:
        return self._endpoints[node_id].region

    def install_observability(self, tracer, registry: Optional[Any] = None) -> None:
        self.tracer = tracer

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> None:
        """Bind every listener, then connect every ordered pair."""
        self._loop = asyncio.get_running_loop()
        for node_id, endpoint in sorted(self._endpoints.items()):
            if self.family == "uds":
                endpoint.address = f"{self.socket_dir}/validator-{node_id}.sock"
                endpoint.server = await asyncio.start_unix_server(
                    self._make_connection_handler(endpoint), path=endpoint.address
                )
            else:
                endpoint.server = await asyncio.start_server(
                    self._make_connection_handler(endpoint), host="127.0.0.1", port=0
                )
                endpoint.address = endpoint.server.sockets[0].getsockname()[:2]
        for sender in self.node_ids:
            for recipient in self.node_ids:
                if sender == recipient:
                    continue
                link = PeerLink(
                    owner=sender,
                    peer=recipient,
                    connect=self._make_connector(recipient),
                    capacity=self.link_capacity,
                    on_event=self._note,
                )
                link.start(self._loop)
                self._links[(sender, recipient)] = link
        await asyncio.gather(*(link.connected for link in self._links.values()))

    def _make_connector(self, recipient: ValidatorId):
        async def connect():
            return await self._connect_with_deadline(recipient)

        return connect

    async def _connect_with_deadline(self, recipient: ValidatorId):
        deadline = self.simulator.now + self.connect_deadline
        delay = 0.02
        endpoint = self._endpoints[recipient]
        while True:
            try:
                if self.family == "uds":
                    return await asyncio.open_unix_connection(endpoint.address)
                host, port = endpoint.address
                return await asyncio.open_connection(host, port)
            except OSError as error:
                if self.simulator.now >= deadline:
                    # Re-raise with errno and address intact so the CLI
                    # guard can print an actionable connection failure.
                    raise OSError(
                        error.errno,
                        f"cannot connect to validator {recipient} within "
                        f"{self.connect_deadline:.1f}s: {error.strerror or error}",
                        str(endpoint.address),
                    ) from error
                await asyncio.sleep(delay)
                delay = min(delay * 2, 0.25)

    def _make_connection_handler(self, endpoint: _Endpoint):
        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            peer: Optional[ValidatorId] = None
            try:
                hello = await read_frame(reader)
                if hello is _EOF:
                    return
                if not isinstance(hello, Hello):
                    raise FrameError(
                        f"expected a hello frame, got {type(hello).__name__}"
                    )
                peer = hello.node_id
                while True:
                    message = await read_frame(reader)
                    if message is _EOF:
                        return
                    self._dispatch(peer, endpoint, message)
            except (FrameError, CodecError) as error:
                origin = "unidentified peer" if peer is None else f"validator {peer}"
                self._note(
                    f"validator {endpoint.node_id}: closing connection from "
                    f"{origin}: {error}"
                )
            except (ConnectionError, OSError) as error:
                self._note(
                    f"validator {endpoint.node_id}: connection error: {error}"
                )
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        return handle

    async def shutdown(self) -> None:
        """Graceful stop: drain links, close writers, close listeners."""
        await asyncio.gather(*(link.close() for link in self._links.values()))
        if self._crash_closers:
            await asyncio.gather(*self._crash_closers, return_exceptions=True)
        for endpoint in self._endpoints.values():
            if endpoint.server is not None:
                endpoint.server.close()
                try:
                    await asyncio.wait_for(endpoint.server.wait_closed(), timeout=5.0)
                except (asyncio.TimeoutError, OSError):
                    pass

    # -- message flow -------------------------------------------------------------

    def send(self, sender: ValidatorId, recipient: ValidatorId, message: Any) -> None:
        frame = encode_frame(message)
        self._send_encoded(sender, recipient, frame)

    def broadcast(self, sender: ValidatorId, message: Any, include_self: bool = True) -> None:
        self.stats.broadcasts += 1
        frame = encode_frame(message)
        for recipient in self.node_ids:
            if recipient == sender and not include_self:
                continue
            self._send_encoded(sender, recipient, frame)

    def multicast(self, sender: ValidatorId, recipients, message: Any) -> None:
        frame = encode_frame(message)
        for recipient in recipients:
            self._send_encoded(sender, recipient, frame)

    def _send_encoded(self, sender: ValidatorId, recipient: ValidatorId, frame: bytes) -> None:
        self.stats.messages_sent += 1
        if self._endpoints[sender].crashed:
            self.stats.messages_dropped += 1
            return
        if self.drop_filter is not None and self.drop_filter(sender, recipient, frame):
            self.stats.messages_dropped += 1
            self.stats.loss_drops += 1
            return
        if recipient == sender:
            # Self-delivery skips the socket but not the codec: the
            # local copy is decoded from the same frame a remote peer
            # would receive, so encodability bugs cannot hide locally.
            message = decode(frame[4:])
            endpoint = self._endpoints[sender]
            self._loop.call_soon(self._dispatch, sender, endpoint, message)
            return
        link = self._links[(sender, recipient)]
        if not link.send_frame(frame):
            self.stats.messages_dropped += 1

    def _dispatch(self, sender: ValidatorId, endpoint: _Endpoint, message: Any) -> None:
        if endpoint.crashed:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        try:
            endpoint.handler(sender, message)
        except Exception as error:  # noqa: BLE001 - surfaced by the runner
            self.handler_errors.append(error)
            self._note(
                f"validator {endpoint.node_id}: handler raised "
                f"{type(error).__name__}: {error}"
            )

    # -- crash semantics ----------------------------------------------------------

    def set_crashed(self, node_id: ValidatorId, crashed: bool = True) -> None:
        endpoint = self._endpoints[node_id]
        endpoint.crashed = crashed
        if not crashed or self._loop is None:
            return
        # Drain-then-close every outbound link: frames queued before the
        # crash are in flight (the simulator delivers those too); the
        # listener closes so no new connection reaches a dead validator.
        if endpoint.server is not None:
            endpoint.server.close()
        for (sender, _recipient), link in self._links.items():
            if sender == node_id and not link.closing:
                self._crash_closers.append(self._loop.create_task(link.close()))

    def is_crashed(self, node_id: ValidatorId) -> bool:
        return self._endpoints[node_id].crashed

    # -- diagnostics --------------------------------------------------------------

    def _note(self, event: str) -> None:
        self.events.append(event)
