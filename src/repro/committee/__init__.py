"""Validator committee: membership, stake, and quorum arithmetic."""

from repro.committee.committee import Committee, ValidatorInfo
from repro.committee.stake import StakeDistribution, equal_stake, geometric_stake, zipfian_stake

__all__ = [
    "Committee",
    "ValidatorInfo",
    "StakeDistribution",
    "equal_stake",
    "geometric_stake",
    "zipfian_stake",
]
