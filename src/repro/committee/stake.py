"""Stake distributions for committees.

The paper notes that real blockchains have validators with heterogeneous
stake, and that high-stake validators occupy more leader slots.  The
simulator therefore supports several stake distributions: uniform (used in
the paper's evaluation, where every AWS validator is identical), geometric
(a few heavy hitters), and Zipfian (a realistic long tail).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.crypto.hashing import evict_oldest_half
from repro.errors import CommitteeError
from repro.types import Stake, quorum_threshold, validity_threshold


@dataclasses.dataclass(frozen=True)
class StakeDistribution:
    """An assignment of stake to each validator index."""

    stakes: Sequence[Stake]

    def __post_init__(self) -> None:
        if not self.stakes:
            raise CommitteeError("a stake distribution needs at least one validator")
        if any(stake <= 0 for stake in self.stakes):
            raise CommitteeError("every validator must hold positive stake")

    @property
    def size(self) -> int:
        return len(self.stakes)

    @property
    def total(self) -> Stake:
        return sum(self.stakes)

    def stake_of(self, validator: int) -> Stake:
        return self.stakes[validator]

    def as_list(self) -> List[Stake]:
        return list(self.stakes)


class StakeVector:
    """Precomputed stake lookup used by the quorum/commit hot paths.

    The consensus engine and the certified-broadcast layer sum stakes of
    validator subsets on every acknowledgement, certificate, and commit
    probe.  At committee sizes of 25+ those summations dominate profiles
    when they rebuild a set and index :class:`Committee` per element.  The
    vector keeps the per-validator stakes in a flat tuple, precomputes the
    thresholds and cumulative totals, and memoizes quorum verdicts for
    signer tuples (one certificate object fans out to every validator, so
    the same tuple is verified ``n`` times per round).
    """

    __slots__ = (
        "stakes",
        "size",
        "total",
        "quorum",
        "validity",
        "cumulative",
        "uniform_stake",
        "_signer_quorum_cache",
        "signer_cache_hits",
        "signer_cache_misses",
        "_mask_quorum_cache",
        "mask_cache_hits",
        "mask_cache_misses",
    )

    # Signer tuples seen per run are bounded by committee size x live
    # rounds; the cap only matters for very long processes running many
    # experiments back to back.
    _SIGNER_CACHE_LIMIT = 65536

    def __init__(self, stakes: Sequence[Stake]) -> None:
        if not stakes:
            raise CommitteeError("a stake vector needs at least one validator")
        self.stakes: Tuple[Stake, ...] = tuple(stakes)
        self.size = len(self.stakes)
        self.total: Stake = sum(self.stakes)
        self.quorum: Stake = quorum_threshold(self.total)
        self.validity: Stake = validity_threshold(self.total)
        # cumulative[i] = stake of validators 0..i-1; the tail masks used
        # by fault planners ("crash the last f") and the bench harness
        # become O(1) range lookups.
        running = 0
        cumulative: List[Stake] = [0]
        for stake in self.stakes:
            running += stake
            cumulative.append(running)
        self.cumulative: Tuple[Stake, ...] = tuple(cumulative)
        first = self.stakes[0]
        self.uniform_stake: Stake = first if all(s == first for s in self.stakes) else 0
        self._signer_quorum_cache: Dict[Tuple[int, ...], bool] = {}
        self._mask_quorum_cache: Dict[int, bool] = {}
        # Observability-only tallies (the vector is shared per committee,
        # so per-run numbers depend on committee reuse; keep them out of
        # digests).
        self.signer_cache_hits = 0
        self.signer_cache_misses = 0
        self.mask_cache_hits = 0
        self.mask_cache_misses = 0

    def stake_of_unique(self, validators: Iterable[int]) -> Stake:
        """Total stake of ``validators``, which must be duplicate-free.

        The callers on the hot path (edge sets, ack sets, signer tuples)
        are duplicate-free by construction, so the set-rebuild of
        :meth:`Committee.stake` is skipped.  Raises on unknown ids.
        """
        stakes = self.stakes
        total = 0
        try:
            for validator in validators:
                if validator < 0:
                    raise IndexError(validator)
                total += stakes[validator]
        except (IndexError, TypeError):
            raise CommitteeError(f"unknown validator in {validators!r}") from None
        return total

    def range_stake(self, start: int, stop: int) -> Stake:
        """Stake of the contiguous id range ``[start, stop)``."""
        if not 0 <= start <= stop <= self.size:
            raise CommitteeError(f"invalid validator range [{start}, {stop})")
        return self.cumulative[stop] - self.cumulative[start]

    def signer_tuple_has_quorum(self, signers: Tuple[int, ...]) -> bool:
        """Memoized 2f+1 check for a certificate's signer tuple.

        Signer tuples are sorted and duplicate-free (the broadcast layer
        builds them from a voter set); equal tuples therefore have equal
        stake, and the verdict can be reused across the ``n`` recipients
        of one certificate fan-out.
        """
        cache = self._signer_quorum_cache
        verdict = cache.get(signers)
        if verdict is None:
            self.signer_cache_misses += 1
            evict_oldest_half(cache, self._SIGNER_CACHE_LIMIT)
            # Miss path: convert once and let the bitmask engine decide.
            # Duplicate signers collapse into one bit, so a malformed or
            # adversarial tuple can never inflate the stake — the same
            # guarantee the old dedupping sum gave.  The tuple cache in
            # front keeps the per-certificate fan-out cost at one dict
            # hit; converting on every call costs O(signers) and showed
            # up as a ~10% events/sec regression at committee 100.
            verdict = self.mask_has_quorum(self.mask_of_validators(signers))
            cache[signers] = verdict
        else:
            self.signer_cache_hits += 1
        return verdict

    # ------------------------------------------------------------------
    # Bitmask arithmetic (the committee-100 fast path).
    #
    # A validator subset is an int whose bit ``v`` is set iff validator
    # ``v`` is a member: duplicate-free by construction, hashable, and
    # O(1) to union/test.  Every mask method is a pure function of the
    # same stake tuple the tuple-based API reads, so verdicts agree bit
    # for bit with ``signer_tuple_has_quorum``/``stake_of_unique`` — the
    # property suite pins that equivalence across stake distributions.
    # ------------------------------------------------------------------

    def mask_stake(self, mask: int) -> Stake:
        """Total stake of the validator set encoded by ``mask``.

        Uniform committees (the paper's evaluation setting) reduce to a
        single popcount-multiply; heterogeneous committees fall back to
        iterating the set bits.  Raises on bits beyond the committee.
        """
        if mask < 0 or mask >> self.size:
            raise CommitteeError(f"mask {mask:#x} has bits outside the committee")
        if self.uniform_stake:
            return mask.bit_count() * self.uniform_stake
        stakes = self.stakes
        total = 0
        while mask:
            low_bit = mask & -mask
            total += stakes[low_bit.bit_length() - 1]
            mask ^= low_bit
        return total

    def mask_has_quorum(self, mask: int) -> bool:
        """Memoized 2f+1 check for a voter/signer bitmask.

        The bitmask twin of :meth:`signer_tuple_has_quorum`: one
        certificate fans out to ``n`` recipients, so the verdict for a
        given mask is computed once and reused.
        """
        cache = self._mask_quorum_cache
        verdict = cache.get(mask)
        if verdict is None:
            self.mask_cache_misses += 1
            evict_oldest_half(cache, self._SIGNER_CACHE_LIMIT)
            verdict = self.mask_stake(mask) >= self.quorum
            cache[mask] = verdict
        else:
            self.mask_cache_hits += 1
        return verdict

    def mask_meets_validity(self, mask: int) -> bool:
        """f+1 (weak availability) check for a voter bitmask."""
        return self.mask_stake(mask) >= self.validity

    @staticmethod
    def mask_of_validators(validators: Iterable[int]) -> int:
        """Bitmask of a validator id collection (duplicates collapse)."""
        mask = 0
        for validator in validators:
            if validator < 0:
                raise CommitteeError(f"unknown validator {validator}")
            mask |= 1 << validator
        return mask

    @staticmethod
    def validators_of_mask(mask: int) -> Tuple[int, ...]:
        """Ascending validator ids encoded by ``mask``.

        Bit order *is* ascending id order, so the result is byte-identical
        to ``tuple(sorted(validator_set))`` — the invariant that lets the
        certificate signers tuple be built straight from the ack mask.
        """
        validators: List[int] = []
        while mask:
            low_bit = mask & -mask
            validators.append(low_bit.bit_length() - 1)
            mask ^= low_bit
        return tuple(validators)


def equal_stake(size: int, per_validator: Stake = 1) -> StakeDistribution:
    """Uniform stake, as in the paper's AWS evaluation."""
    if size <= 0:
        raise CommitteeError("committee size must be positive")
    return StakeDistribution(tuple(per_validator for _ in range(size)))


def geometric_stake(size: int, ratio: float = 0.9, scale: int = 1000) -> StakeDistribution:
    """Geometrically decaying stake: validator ``i`` holds ``scale * ratio**i``.

    Produces a committee with a small number of dominant validators, the
    setting the introduction describes where the failure of a high-stake
    validator removes many leader slots at once.
    """
    if size <= 0:
        raise CommitteeError("committee size must be positive")
    if not 0.0 < ratio <= 1.0:
        raise CommitteeError("ratio must lie in (0, 1]")
    stakes = [max(1, int(round(scale * ratio**index))) for index in range(size)]
    return StakeDistribution(tuple(stakes))


def zipfian_stake(size: int, exponent: float = 1.0, scale: int = 1000) -> StakeDistribution:
    """Zipfian stake: validator ``i`` holds ``scale / (i + 1)**exponent``."""
    if size <= 0:
        raise CommitteeError("committee size must be positive")
    if exponent < 0.0:
        raise CommitteeError("exponent must be non-negative")
    stakes = [max(1, int(round(scale / (index + 1) ** exponent))) for index in range(size)]
    return StakeDistribution(tuple(stakes))
