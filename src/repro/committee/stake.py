"""Stake distributions for committees.

The paper notes that real blockchains have validators with heterogeneous
stake, and that high-stake validators occupy more leader slots.  The
simulator therefore supports several stake distributions: uniform (used in
the paper's evaluation, where every AWS validator is identical), geometric
(a few heavy hitters), and Zipfian (a realistic long tail).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.errors import CommitteeError
from repro.types import Stake


@dataclasses.dataclass(frozen=True)
class StakeDistribution:
    """An assignment of stake to each validator index."""

    stakes: Sequence[Stake]

    def __post_init__(self) -> None:
        if not self.stakes:
            raise CommitteeError("a stake distribution needs at least one validator")
        if any(stake <= 0 for stake in self.stakes):
            raise CommitteeError("every validator must hold positive stake")

    @property
    def size(self) -> int:
        return len(self.stakes)

    @property
    def total(self) -> Stake:
        return sum(self.stakes)

    def stake_of(self, validator: int) -> Stake:
        return self.stakes[validator]

    def as_list(self) -> List[Stake]:
        return list(self.stakes)


def equal_stake(size: int, per_validator: Stake = 1) -> StakeDistribution:
    """Uniform stake, as in the paper's AWS evaluation."""
    if size <= 0:
        raise CommitteeError("committee size must be positive")
    return StakeDistribution(tuple(per_validator for _ in range(size)))


def geometric_stake(size: int, ratio: float = 0.9, scale: int = 1000) -> StakeDistribution:
    """Geometrically decaying stake: validator ``i`` holds ``scale * ratio**i``.

    Produces a committee with a small number of dominant validators, the
    setting the introduction describes where the failure of a high-stake
    validator removes many leader slots at once.
    """
    if size <= 0:
        raise CommitteeError("committee size must be positive")
    if not 0.0 < ratio <= 1.0:
        raise CommitteeError("ratio must lie in (0, 1]")
    stakes = [max(1, int(round(scale * ratio**index))) for index in range(size)]
    return StakeDistribution(tuple(stakes))


def zipfian_stake(size: int, exponent: float = 1.0, scale: int = 1000) -> StakeDistribution:
    """Zipfian stake: validator ``i`` holds ``scale / (i + 1)**exponent``."""
    if size <= 0:
        raise CommitteeError("committee size must be positive")
    if exponent < 0.0:
        raise CommitteeError("exponent must be non-negative")
    stakes = [max(1, int(round(scale / (index + 1) ** exponent))) for index in range(size)]
    return StakeDistribution(tuple(stakes))
