"""The validator committee.

A :class:`Committee` is the static membership information every validator
knows: who the validators are, how much stake each holds, which region
each runs in, and the derived quorum thresholds.  Committees are immutable
for the duration of an epoch; HammerHead changes the *leader schedule*
within a committee, never the committee itself.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.committee.stake import StakeDistribution, StakeVector, equal_stake
from repro.crypto.hashing import evict_oldest_half
from repro.crypto.keys import KeyPair, PublicKey, keypairs_for_committee
from repro.errors import CommitteeError
from repro.types import Region, Stake, ValidatorId, quorum_threshold, validity_threshold

# The thirteen AWS regions used by the paper's evaluation testbed.
DEFAULT_REGIONS: Tuple[str, ...] = (
    "us-east-1",
    "us-west-2",
    "ca-central-1",
    "eu-central-1",
    "eu-west-1",
    "eu-west-2",
    "eu-west-3",
    "eu-north-1",
    "ap-south-1",
    "ap-southeast-1",
    "ap-southeast-2",
    "ap-northeast-1",
    "ap-northeast-2",
)


@dataclasses.dataclass(frozen=True)
class ValidatorInfo:
    """Static metadata describing one committee member."""

    validator: ValidatorId
    name: str
    stake: Stake
    region: Region
    public_key: PublicKey


class Committee:
    """An immutable set of validators with stake and region placement."""

    def __init__(self, members: Sequence[ValidatorInfo]) -> None:
        if not members:
            raise CommitteeError("a committee needs at least one validator")
        expected_ids = list(range(len(members)))
        actual_ids = [member.validator for member in members]
        if actual_ids != expected_ids:
            raise CommitteeError(
                "committee members must be supplied in index order 0..n-1; "
                f"got {actual_ids}"
            )
        if any(member.stake <= 0 for member in members):
            raise CommitteeError("every validator must hold positive stake")
        self._members: Tuple[ValidatorInfo, ...] = tuple(members)
        self._total_stake: Stake = sum(member.stake for member in members)
        # Hot-path lookups: stakes indexable by validator id, thresholds
        # precomputed (the consensus engine queries them per insertion).
        self._stakes: Tuple[Stake, ...] = tuple(member.stake for member in members)
        self._quorum_threshold: Stake = quorum_threshold(self._total_stake)
        self._validity_threshold: Stake = validity_threshold(self._total_stake)
        # Vectorized stake arithmetic shared by every node of a simulation
        # (see :class:`~repro.committee.stake.StakeVector`).
        self._stake_vector = StakeVector(self._stakes)
        # Edge-quorum verdicts memoized by vertex digest: one proposed
        # vertex object is validated by every recipient's DAG store, and
        # the digest binds the edge set, so the verdict is shared.
        self._edge_quorum_cache: Dict[bytes, bool] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        size: int,
        stake: Optional[StakeDistribution] = None,
        regions: Sequence[str] = DEFAULT_REGIONS,
        seed: int = 0,
    ) -> "Committee":
        """Build a committee of ``size`` validators.

        Validators are spread over ``regions`` as equally as possible, the
        same placement policy the paper uses on AWS.  Key pairs are derived
        deterministically from ``seed`` so simulations are reproducible.
        """
        if size <= 0:
            raise CommitteeError("committee size must be positive")
        if not regions:
            raise CommitteeError("at least one region is required")
        distribution = stake if stake is not None else equal_stake(size)
        if distribution.size != size:
            raise CommitteeError(
                f"stake distribution covers {distribution.size} validators, "
                f"but the committee has {size}"
            )
        keypairs = keypairs_for_committee(size, seed=seed)
        members = []
        for index in range(size):
            region_name = regions[index % len(regions)]
            members.append(
                ValidatorInfo(
                    validator=index,
                    name=f"validator-{index}",
                    stake=distribution.stake_of(index),
                    region=Region(region_name),
                    public_key=keypairs[index].public,
                )
            )
        return cls(members)

    @staticmethod
    def keypairs(size: int, seed: int = 0) -> Dict[ValidatorId, KeyPair]:
        """Return the signing key pairs matching :meth:`build` with ``seed``."""
        return keypairs_for_committee(size, seed=seed)

    # -- membership --------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def validators(self) -> Tuple[ValidatorId, ...]:
        return tuple(member.validator for member in self._members)

    def __iter__(self) -> Iterator[ValidatorInfo]:
        return iter(self._members)

    def __contains__(self, validator: ValidatorId) -> bool:
        return 0 <= validator < len(self._members)

    def info(self, validator: ValidatorId) -> ValidatorInfo:
        if validator not in self:
            raise CommitteeError(f"unknown validator {validator}")
        return self._members[validator]

    def stake_of(self, validator: ValidatorId) -> Stake:
        if not 0 <= validator < len(self._stakes):
            raise CommitteeError(f"unknown validator {validator}")
        return self._stakes[validator]

    def region_of(self, validator: ValidatorId) -> Region:
        return self.info(validator).region

    def public_key_of(self, validator: ValidatorId) -> PublicKey:
        return self.info(validator).public_key

    # -- stake arithmetic ---------------------------------------------------

    @property
    def total_stake(self) -> Stake:
        return self._total_stake

    @property
    def quorum_threshold(self) -> Stake:
        """The 2f+1 threshold expressed in stake."""
        return self._quorum_threshold

    @property
    def validity_threshold(self) -> Stake:
        """The f+1 threshold expressed in stake."""
        return self._validity_threshold

    @property
    def max_faulty(self) -> int:
        """The maximum number of faulty validators tolerated, ``f = (n-1)//3``."""
        return (self.size - 1) // 3

    @property
    def stake_vector(self) -> StakeVector:
        """Precomputed stake arithmetic for the quorum/commit hot paths."""
        return self._stake_vector

    def stake(self, validators: Iterable[ValidatorId]) -> Stake:
        """Total stake held by ``validators`` (duplicates counted once)."""
        stakes = self._stakes
        size = len(stakes)
        if not isinstance(validators, (set, frozenset)):
            validators = set(validators)
        total = 0
        for validator in validators:
            if not 0 <= validator < size:
                raise CommitteeError(f"unknown validator {validator}")
            total += stakes[validator]
        return total

    def has_quorum(self, validators: Iterable[ValidatorId]) -> bool:
        return self.stake(validators) >= self.quorum_threshold

    def has_validity(self, validators: Iterable[ValidatorId]) -> bool:
        return self.stake(validators) >= self.validity_threshold

    def edge_quorum_verdict(
        self,
        digest: bytes,
        sources: Iterable[ValidatorId],
        mask: Optional[int] = None,
    ) -> bool:
        """Memoized 2f+1 check for a vertex's parent edge set.

        Keyed by the vertex content digest (which binds the edge set), so
        the ``n`` DAG stores validating one broadcast vertex share a
        single verification.  When the caller supplies the precomputed
        edge ``mask`` and stake is uniform, the stake sum collapses to a
        popcount-multiply; any out-of-range bit falls through to the
        tuple path, which raises on unknown validators exactly as before.
        """
        cache = self._edge_quorum_cache
        verdict = cache.get(digest)
        if verdict is None:
            evict_oldest_half(cache, 65536)
            vector = self._stake_vector
            if mask is not None and vector.uniform_stake and not mask >> vector.size:
                verdict = mask.bit_count() * vector.uniform_stake >= self._quorum_threshold
            else:
                verdict = vector.stake_of_unique(sources) >= self._quorum_threshold
            cache[digest] = verdict
        return verdict

    def edge_quorum_cache_size(self) -> int:
        """Current size of the per-committee edge-quorum memo."""
        return len(self._edge_quorum_cache)

    # -- stake-ordered helpers ----------------------------------------------

    def by_stake(self, descending: bool = True) -> List[ValidatorId]:
        """Validator ids ordered by stake, ties broken by id."""
        return sorted(
            self.validators,
            key=lambda validator: (-self.stake_of(validator), validator)
            if descending
            else (self.stake_of(validator), validator),
        )

    def sample(self, count: int, rng: Optional[random.Random] = None) -> List[ValidatorId]:
        """Sample ``count`` distinct validators uniformly at random."""
        if count > self.size:
            raise CommitteeError("cannot sample more validators than the committee holds")
        generator = rng if rng is not None else random.Random(0)
        return generator.sample(list(self.validators), count)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Committee(size={self.size}, total_stake={self.total_stake})"
