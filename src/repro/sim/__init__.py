"""Simulation harness: experiment configuration, runner, and sweeps."""

from repro.sim.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.sim.presets import (
    execution_capacity_for,
    node_config_for,
    paper_committee_sizes,
    paper_fault_counts,
)
from repro.sim.runner import SimulationRunner
from repro.sim.sweep import latency_throughput_curve, compare_systems

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "SimulationRunner",
    "node_config_for",
    "execution_capacity_for",
    "paper_committee_sizes",
    "paper_fault_counts",
    "latency_throughput_curve",
    "compare_systems",
]
