"""Experiment configuration and results.

An :class:`ExperimentConfig` describes one run: which protocol, how many
validators, how much load, which faults.  :func:`run_experiment` builds a
:class:`~repro.sim.runner.SimulationRunner` from the config, runs it, and
returns an :class:`ExperimentResult` carrying the performance report plus
handles to the simulation internals (used by integration tests to check
safety and schedule agreement).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.scoring import scoring_rule_names
from repro.errors import ConfigurationError
from repro.faults.base import FaultPlan
from repro.metrics.report import PerformanceReport
from repro.types import SimTime

# Protocol identifiers.
PROTOCOL_HAMMERHEAD = "hammerhead"
PROTOCOL_BULLSHARK = "bullshark"

# Scoring rule identifiers (ablation ABL-SCORE).  Derived from the
# scoring-rule registry at import time; validation consults the registry
# live so rules registered later are accepted too.
SCORING_RULES = scoring_rule_names()


@dataclasses.dataclass
class ExperimentConfig:
    """Full description of one simulated benchmark run."""

    # System under test.
    protocol: str = PROTOCOL_HAMMERHEAD
    committee_size: int = 10
    stake: str = "equal"  # "equal", "geometric", or "zipf"

    # Workload.  ``input_load_tps`` drives a constant-rate load; when
    # ``load_phases`` is non-empty it takes precedence and describes a
    # piecewise-constant profile as (start, end, tps) windows (see
    # :mod:`repro.workload.phases`), with ``input_load_tps`` kept as the
    # nominal rate echoed into reports.
    input_load_tps: float = 1000.0
    load_phases: Sequence[Tuple[SimTime, SimTime, float]] = ()
    duration: SimTime = 30.0
    warmup: SimTime = 5.0

    # Faults.
    faults: int = 0
    fault_time: SimTime = 0.0
    extra_faults: Sequence[FaultPlan] = ()

    # HammerHead parameters (ignored by the Bullshark baseline).
    commits_per_schedule: int = 10
    exclude_fraction: float = 1.0 / 3.0
    scoring: str = "hammerhead"
    schedule_change_policy: str = "commits"  # or "rounds"
    rounds_per_schedule: int = 20

    # Node / network parameters.
    leader_timeout: SimTime = 4.0
    min_round_interval: Optional[SimTime] = None
    max_batch_size: Optional[int] = None
    latency_model: str = "geo"  # "geo" or "uniform"
    gst: SimTime = 0.0
    delta: SimTime = 2.0
    execution_capacity_tps: Optional[float] = None
    # Certificate fan-out wire format (see NodeConfig.certificate_batching).
    certificate_batching: bool = True
    # Relay recently collected certificates on the propose fan-out so a
    # lost certificate heals without a fetch round-trip (see
    # NodeConfig.certificate_piggyback).  Off by default: loss-free runs
    # are byte-identical either way, but lossy-run digests change with
    # the flag on, so lossy comparisons use committed-prefix invariants
    # (:mod:`repro.obs.consistency`) instead of digest equality.
    certificate_piggyback: bool = False
    # Client failover during partition windows: when on, load generators
    # retarget to the majority side while a PartitionPlan window is open
    # (the way real benchmark clients abandon unreachable endpoints) and
    # return to the full target set at the heal.  Off by default — it
    # changes submission patterns, so the historical partition digests
    # only hold with the flag off.
    partition_failover: bool = False

    # Simulation control.
    seed: int = 1
    record_sequences: bool = False
    observer: int = 0

    # Observability (see :mod:`repro.obs`).  ``trace`` records the
    # deterministic protocol event stream into ``ExperimentResult.trace``;
    # ``profile`` attaches the wall-clock phase profiler (wall-clock
    # numbers are non-deterministic by nature, which is why the profiler
    # module lives on the analyzer's wall-clock allowlist).  Both are off
    # by default and, when off, leave the hot paths untouched.
    trace: bool = False
    profile: bool = False
    # Ring-buffer bound for the tracer: keep at most this many events in
    # memory (oldest evicted first; the export carries one
    # ``trace_truncated`` marker).  ``None`` keeps the full stream —
    # fine up to committee ~50, prohibitive at committee 100+.  Only
    # meaningful together with ``trace``.
    trace_limit: Optional[int] = None
    # Sampling mode for the tracer: keep every Nth emitted event (the
    # first of each stride), dropping the rest at the emit site.  ``None``
    # (or 1) keeps the full stream.  Composes with ``trace_limit``: the
    # ring bound applies to the sampled stream, and exports carry one
    # ``trace_sampled`` marker so consumers can tell a thinned trace from
    # a complete one.  Only meaningful together with ``trace``.
    trace_sample_every: Optional[int] = None

    def validate(self) -> "ExperimentConfig":
        if self.protocol not in (PROTOCOL_HAMMERHEAD, PROTOCOL_BULLSHARK):
            raise ConfigurationError(f"unknown protocol {self.protocol!r}")
        if self.committee_size < 1:
            raise ConfigurationError("the committee needs at least one validator")
        if self.stake not in ("equal", "geometric", "zipf"):
            raise ConfigurationError(f"unknown stake distribution {self.stake!r}")
        if self.input_load_tps < 0:
            raise ConfigurationError("the input load must be non-negative")
        if self.duration <= 0:
            raise ConfigurationError("the run duration must be positive")
        previous_end = 0.0
        for phase in self.load_phases:
            try:
                start, end, tps = phase
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"load phases must be (start, end, tps) triples, got {phase!r}"
                ) from None
            if start < previous_end:
                raise ConfigurationError("load phases must be ordered and non-overlapping")
            if end <= start:
                raise ConfigurationError("a load phase must end after it starts")
            if end > self.duration:
                raise ConfigurationError("load phases must lie within the run duration")
            if tps < 0:
                raise ConfigurationError("load phase rates must be non-negative")
            previous_end = end
        if not 0 <= self.warmup < self.duration:
            raise ConfigurationError("warmup must lie within the run duration")
        max_faulty = (self.committee_size - 1) // 3
        if not 0 <= self.faults <= max_faulty:
            raise ConfigurationError(
                f"a committee of {self.committee_size} tolerates at most "
                f"{max_faulty} faults, not {self.faults}"
            )
        if self.scoring not in scoring_rule_names():
            raise ConfigurationError(
                f"unknown scoring rule {self.scoring!r} "
                f"(known: {', '.join(scoring_rule_names())})"
            )
        if self.schedule_change_policy not in ("commits", "rounds"):
            raise ConfigurationError(
                f"unknown schedule change policy {self.schedule_change_policy!r}"
            )
        if self.latency_model not in ("geo", "uniform"):
            raise ConfigurationError(f"unknown latency model {self.latency_model!r}")
        if not 0 <= self.observer < self.committee_size:
            raise ConfigurationError("the observer must be a committee member")
        if self.seed < 0 or self.seed >= 4096:
            raise ConfigurationError("seeds must lie in [0, 4096)")
        if self.trace_limit is not None and self.trace_limit < 1:
            raise ConfigurationError("trace_limit must be positive (or None)")
        if self.trace_sample_every is not None and self.trace_sample_every < 1:
            raise ConfigurationError("trace_sample_every must be positive (or None)")
        if not 0.0 <= self.exclude_fraction < 1.0:
            raise ConfigurationError("exclude_fraction must lie in [0, 1)")
        return self

    def label(self) -> str:
        fault_text = f", {self.faults} faulty" if self.faults else ""
        return f"{self.protocol} - {self.committee_size} nodes{fault_text} @ {self.input_load_tps:.0f} tx/s"

    def with_overrides(self, **changes) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass
class ExperimentResult:
    """Everything a caller may want to know about a finished run."""

    config: ExperimentConfig
    report: PerformanceReport
    ordering_digests: Dict[int, Tuple[int, str]]
    schedule_epochs: Dict[int, int]
    schedule_histories: Dict[int, List[Tuple[int, int]]]
    leader_timeouts: Dict[int, int]
    commits_per_leader: Dict[int, int]
    skipped_rounds_per_leader: Dict[int, int]
    crashed_validators: List[int]
    # Reputation-reaction summary from the observer's schedule history
    # (see :func:`repro.metrics.reputation.reputation_metrics`): score
    # trajectory per schedule change, rounds-until-demotion and leader-
    # slot share of the fault-affected validators.
    reputation: Dict[str, Any] = dataclasses.field(default_factory=dict)
    # Periodic (ordered_count, rolling-digest) snapshots per validator
    # (every ORDERING_CHECKPOINT_INTERVAL ordered vertices; see
    # :mod:`repro.consensus.bullshark`).  Two runs whose digests differ
    # can still be compared by their longest common committed prefix
    # (:mod:`repro.obs.consistency`) — the lossy-run comparison story.
    ordering_checkpoints: Dict[int, List[Tuple[int, str]]] = dataclasses.field(
        default_factory=dict
    )
    # Instrumentation counter snapshot (always populated; cheap).  Memo
    # hit/miss entries describe process-wide caches and must never be
    # folded into digests or run-to-run comparisons.
    counters: Dict[str, Any] = dataclasses.field(default_factory=dict)
    # Deterministic trace events (populated when ``config.trace``).
    trace: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    # Wall-clock phase profile (populated when ``config.profile``).
    profile: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.report.throughput_tps

    @property
    def avg_latency(self) -> float:
        return self.report.avg_latency_s

    @property
    def p95_latency(self) -> float:
        return self.report.p95_latency_s


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Build, run, and summarize one experiment."""
    # Imported here to avoid a circular import (the runner imports this
    # module for the config class).
    from repro.sim.runner import SimulationRunner

    runner = SimulationRunner(config)
    return runner.run()
