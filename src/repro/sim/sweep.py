"""Parameter sweeps: latency/throughput curves and system comparisons.

These helpers generate the series plotted in Figures 1 and 2 of the
paper: for each input load in a sweep, run the system and record the
measured throughput and latency; repeat per system and committee size.

Sweeps are embarrassingly parallel — every experiment is an independent,
deterministic discrete-event simulation whose outcome depends only on its
:class:`ExperimentConfig` (including its seed) — so the
:class:`SweepEngine` fans a batch of configurations out over a
``ProcessPoolExecutor``:

* ``parallelism`` selects the worker count.  The default comes from the
  ``REPRO_SWEEP_PARALLELISM`` environment variable, falling back to the
  machine's CPU count; ``1`` runs serially in-process.
* Results are returned **in input order** regardless of which worker
  finishes first, so callers can zip them against their configurations.
* Results are identical whether a sweep runs serially or in parallel
  (determinism is per-experiment), which the test suite checks.
* If worker processes cannot be used (unpicklable fault plans in a
  config, restricted environments), the engine degrades to the serial
  path instead of failing the sweep.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.report import PerformanceReport
from repro.sim.experiment import ExperimentConfig, ExperimentResult, run_experiment

# Environment knob for the default sweep parallelism.
PARALLELISM_ENV = "REPRO_SWEEP_PARALLELISM"


def default_parallelism() -> int:
    """Worker count used when a sweep does not specify one explicitly."""
    value = os.environ.get(PARALLELISM_ENV, "").strip()
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            raise ValueError(
                f"{PARALLELISM_ENV} must be a positive integer, got {value!r}"
            ) from None
    return max(1, os.cpu_count() or 1)


def _run_config(config: ExperimentConfig) -> ExperimentResult:
    """Worker entry point (module-level so it pickles under ``spawn``)."""
    return run_experiment(config)


class SweepEngine:
    """Runs batches of independent experiments, possibly in parallel."""

    def __init__(self, parallelism: Optional[int] = None) -> None:
        self.parallelism = default_parallelism() if parallelism is None else max(1, parallelism)

    def run(self, configs: Sequence[ExperimentConfig]) -> List[ExperimentResult]:
        """Run every configuration and return results in input order."""
        configs = list(configs)
        if not configs:
            return []
        workers = min(self.parallelism, len(configs))
        if workers <= 1:
            return [run_experiment(config) for config in configs]
        # Pre-flight: configs must survive the trip to a worker process.
        # Checking up front (rather than catching TypeError and friends
        # around pool.map) keeps the fallback from swallowing genuine
        # experiment failures — an exception raised *inside*
        # run_experiment propagates with completed results discarded only
        # once, exactly like the serial path.
        try:
            pickle.dumps(configs)
        except Exception as error:
            warnings.warn(
                f"parallel sweep fell back to serial execution "
                f"(configs are not picklable): {error!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            return [run_experiment(config) for config in configs]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # ``map`` preserves input order; chunksize 1 keeps the
                # longest-running point from serializing a whole chunk
                # behind it.
                return list(pool.map(_run_config, configs, chunksize=1))
        except (pickle.PicklingError, BrokenProcessPool, OSError) as error:
            # Worker processes are an optimization, never a requirement:
            # environments without process support (or unpicklable
            # *results*) fall back to the exact serial semantics.  Genuine
            # experiment failures (e.g. a ConfigurationError) are *not*
            # caught here and propagate.
            warnings.warn(
                f"parallel sweep fell back to serial execution: {error!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            return [run_experiment(config) for config in configs]


def run_sweep(
    configs: Sequence[ExperimentConfig], parallelism: Optional[int] = None
) -> List[ExperimentResult]:
    """Run a batch of experiments with a :class:`SweepEngine`."""
    return SweepEngine(parallelism=parallelism).run(configs)


def latency_throughput_curve(
    base_config: ExperimentConfig,
    loads: Sequence[float],
    parallelism: Optional[int] = None,
) -> List[ExperimentResult]:
    """Run ``base_config`` once per input load and return all results."""
    configs = [base_config.with_overrides(input_load_tps=load) for load in loads]
    return run_sweep(configs, parallelism=parallelism)


def compare_systems(
    base_config: ExperimentConfig,
    loads: Sequence[float],
    protocols: Iterable[str] = ("hammerhead", "bullshark"),
    parallelism: Optional[int] = None,
) -> Dict[str, List[ExperimentResult]]:
    """Latency/throughput curves for several systems under one setup.

    All (protocol, load) points are submitted as a single batch so the
    worker pool stays busy across the protocol boundary.
    """
    protocols = list(protocols)
    configs = [
        base_config.with_overrides(protocol=protocol, input_load_tps=load)
        for protocol in protocols
        for load in loads
    ]
    results = run_sweep(configs, parallelism=parallelism)
    curves: Dict[str, List[ExperimentResult]] = {}
    for index, protocol in enumerate(protocols):
        curves[protocol] = results[index * len(loads) : (index + 1) * len(loads)]
    return curves


def reports_of(results: Sequence[ExperimentResult]) -> List[PerformanceReport]:
    """Extract the performance reports of a result list."""
    return [result.report for result in results]


def curve_points(results: Sequence[ExperimentResult]) -> List[Tuple[float, float]]:
    """(throughput, average latency) points of a curve, as plotted in the paper."""
    return [(result.throughput, result.avg_latency) for result in results]


def peak_throughput(results: Sequence[ExperimentResult]) -> float:
    """Highest measured throughput across a sweep."""
    if not results:
        return 0.0
    return max(result.throughput for result in results)


def latency_at_peak(results: Sequence[ExperimentResult]) -> float:
    """Average latency at the highest measured throughput."""
    if not results:
        return 0.0
    best = max(results, key=lambda result: result.throughput)
    return best.avg_latency
