"""Parameter sweeps: latency/throughput curves and system comparisons.

These helpers generate the series plotted in Figures 1 and 2 of the
paper: for each input load in a sweep, run the system and record the
measured throughput and latency; repeat per system and committee size.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.metrics.report import PerformanceReport
from repro.sim.experiment import ExperimentConfig, ExperimentResult, run_experiment


def latency_throughput_curve(
    base_config: ExperimentConfig,
    loads: Sequence[float],
) -> List[ExperimentResult]:
    """Run ``base_config`` once per input load and return all results."""
    results = []
    for load in loads:
        config = base_config.with_overrides(input_load_tps=load)
        results.append(run_experiment(config))
    return results


def compare_systems(
    base_config: ExperimentConfig,
    loads: Sequence[float],
    protocols: Iterable[str] = ("hammerhead", "bullshark"),
) -> Dict[str, List[ExperimentResult]]:
    """Latency/throughput curves for several systems under one setup."""
    curves: Dict[str, List[ExperimentResult]] = {}
    for protocol in protocols:
        config = base_config.with_overrides(protocol=protocol)
        curves[protocol] = latency_throughput_curve(config, loads)
    return curves


def reports_of(results: Sequence[ExperimentResult]) -> List[PerformanceReport]:
    """Extract the performance reports of a result list."""
    return [result.report for result in results]


def curve_points(results: Sequence[ExperimentResult]) -> List[Tuple[float, float]]:
    """(throughput, average latency) points of a curve, as plotted in the paper."""
    return [(result.throughput, result.avg_latency) for result in results]


def peak_throughput(results: Sequence[ExperimentResult]) -> float:
    """Highest measured throughput across a sweep."""
    if not results:
        return 0.0
    return max(result.throughput for result in results)


def latency_at_peak(results: Sequence[ExperimentResult]) -> float:
    """Average latency at the highest measured throughput."""
    if not results:
        return 0.0
    best = max(results, key=lambda result: result.throughput)
    return best.avg_latency
