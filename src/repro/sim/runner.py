"""The simulation runner: builds a full deployment and runs it.

The runner is the equivalent of the paper's AWS orchestrator: it creates
the committee, the (simulated) network, one validator per committee
member, the benchmark clients, and the fault schedule, runs the system for
the configured duration of virtual time, and collects the measurements
into a :class:`~repro.metrics.report.PerformanceReport`.
"""

from __future__ import annotations

import gc
from typing import Any, Callable, Dict, List

from repro.committee import Committee, equal_stake, geometric_stake, zipfian_stake
from repro.core.manager import (
    HammerHeadScheduleManager,
    ScheduleManager,
    StaticScheduleManager,
)
from repro.core.schedule_change import CommitCountPolicy, RoundBasedPolicy
from repro.core.scoring import make_scoring_rule
from repro.faults.base import FaultInjector
from repro.faults.crash import crash_last_f
from repro.faults.partition import PartitionPlan
from repro.metrics.collector import MetricsCollector
from repro.metrics.execution import ExecutionModel
from repro.metrics.leader_stats import LeaderUtilizationStats
from repro.metrics.report import PerformanceReport
from repro.metrics.reputation import reputation_metrics
from repro.network.latency import GeoLatencyModel, UniformLatencyModel
from repro.network.simulator import Simulator
from repro.network.synchrony import AlwaysSynchronous, PartialSynchrony
from repro.network.transport import Network
from repro.node.config import NodeConfig
from repro.node.validator import ValidatorNode
from repro.obs.registry import InstrumentationRegistry
from repro.obs.trace import MemoryTracer
from repro.schedule.round_robin import initial_schedule
from repro.sim.experiment import (
    ExperimentConfig,
    ExperimentResult,
    PROTOCOL_HAMMERHEAD,
)
from repro.sim.presets import execution_capacity_for, node_config_for
from repro.types import ValidatorId
from repro.workload.generator import LoadGenerator, spawn_load
from repro.workload.phases import LoadPhase, spawn_phased_load


class SimulationRunner:
    """Builds and runs one experiment."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config.validate()
        self.committee = self._build_committee()
        self.simulator = Simulator(seed=config.seed)
        self.network = Network(
            simulator=self.simulator,
            latency_model=self._build_latency_model(),
            synchrony=self._build_synchrony_model(),
        )
        self.node_config = self._build_node_config()
        self.nodes: Dict[ValidatorId, ValidatorNode] = {}
        self._build_nodes()
        self.metrics = MetricsCollector(
            confirmation_delay=0.040,
            warmup=config.warmup,
            execution=ExecutionModel(self._execution_capacity()),
        )
        self.leader_stats = LeaderUtilizationStats()
        self.fault_injector = self._build_faults()
        # Live load generators (filled by _start_load); partition-aware
        # failover retargets them while a partition window is open.
        self._load_generators: List[LoadGenerator] = []
        self.tracer = None
        self.registry = None
        self.profiler = None
        if config.trace:
            self._install_observability()
        if config.profile:
            self._install_profiler()
        self._wire_observers()

    # -- construction ---------------------------------------------------------------

    def _build_committee(self) -> Committee:
        size = self.config.committee_size
        if self.config.stake == "equal":
            stake = equal_stake(size)
        elif self.config.stake == "geometric":
            stake = geometric_stake(size)
        else:
            stake = zipfian_stake(size)
        return Committee.build(size, stake=stake, seed=self.config.seed)

    def _build_latency_model(self):
        if self.config.latency_model == "geo":
            return GeoLatencyModel()
        return UniformLatencyModel()

    def _build_synchrony_model(self):
        if self.config.gst > 0:
            return PartialSynchrony(gst=self.config.gst, delta=self.config.delta)
        return AlwaysSynchronous(delta=self.config.delta)

    def _build_node_config(self) -> NodeConfig:
        base = node_config_for(
            self.config.committee_size, leader_timeout=self.config.leader_timeout
        )
        if self.config.min_round_interval is not None:
            base.min_round_interval = self.config.min_round_interval
        if self.config.max_batch_size is not None:
            base.max_batch_size = self.config.max_batch_size
        base.record_sequence = self.config.record_sequences
        base.certificate_batching = self.config.certificate_batching
        base.certificate_piggyback = self.config.certificate_piggyback
        base.scoring_rule = self.config.scoring
        return base.validate()

    def _execution_capacity(self) -> float:
        if self.config.execution_capacity_tps is not None:
            return self.config.execution_capacity_tps
        return execution_capacity_for(self.config.committee_size)

    def _schedule_manager_factory(self) -> Callable[[], ScheduleManager]:
        config = self.config
        committee = self.committee
        # The node config is the authoritative per-node knob (the runner
        # keeps it in sync with ExperimentConfig.scoring in
        # _build_node_config; standalone deployments set it directly).
        scoring_rule = self.node_config.scoring_rule

        def factory() -> ScheduleManager:
            schedule = initial_schedule(committee, seed=config.seed)
            if config.protocol != PROTOCOL_HAMMERHEAD:
                return StaticScheduleManager(committee, schedule)
            if config.schedule_change_policy == "commits":
                policy = CommitCountPolicy(config.commits_per_schedule)
            else:
                policy = RoundBasedPolicy(config.rounds_per_schedule)
            scoring = make_scoring_rule(scoring_rule)
            return HammerHeadScheduleManager(
                committee,
                schedule,
                policy=policy,
                scoring=scoring,
                exclude_fraction=config.exclude_fraction,
            )

        return factory

    def _build_nodes(self) -> None:
        factory = self._schedule_manager_factory()
        for validator in self.committee.validators:
            self.nodes[validator] = ValidatorNode(
                validator_id=validator,
                committee=self.committee,
                network=self.network,
                schedule_manager=factory(),
                config=self.node_config,
                schedule_manager_factory=factory,
            )

    def _build_faults(self) -> FaultInjector:
        injector = FaultInjector(list(self.config.extra_faults))
        if self.config.faults > 0:
            injector.add(
                crash_last_f(
                    self.committee,
                    faults=self.config.faults,
                    at_time=self.config.fault_time,
                    protect=(self.config.observer,),
                )
            )
        return injector

    def _wire_observers(self) -> None:
        observer = self.nodes[self.config.observer]
        self.metrics.attach_observer(observer)
        observer.on_commit(self.leader_stats.record_commit)

    # -- observability ---------------------------------------------------------------

    def _install_observability(self) -> None:
        """Attach the deterministic tracer and the counter registry.

        Events are stamped with simulated time, and every emission site
        is a deterministic function of protocol state, so the recorded
        stream is byte-reproducible for a given (config, seed) — the
        differential suite pins that tracing leaves the ordering digests
        untouched.
        """
        simulator = self.simulator
        self.tracer = MemoryTracer(
            clock=lambda: simulator.now,
            max_events=self.config.trace_limit,
            sample_every=self.config.trace_sample_every,
        )
        self.registry = InstrumentationRegistry()
        self.network.install_observability(self.tracer, self.registry)
        for _validator, node in sorted(self.nodes.items()):
            node.install_observability(self.tracer, self.registry)

    def _install_profiler(self) -> None:
        # Imported lazily: the profiler reads the wall clock, and keeping
        # it out of module scope here keeps repro.sim outside the
        # analyzer's wall-clock allowlist.
        from repro.obs.profiler import WallclockProfiler

        self.profiler = WallclockProfiler()
        for _validator, node in sorted(self.nodes.items()):
            self.profiler.instrument_node(node)

    # -- running ------------------------------------------------------------------------

    def run(self) -> ExperimentResult:
        """Run the experiment and return its result.

        The cyclic garbage collector is suspended for the duration of the
        event loop: a peak-load run allocates hundreds of thousands of
        short-lived tuples and messages per simulated second, nearly all
        of which die by reference counting, and the periodic generational
        scans over that churn were a measurable fraction of wall-clock
        time.  The collector is re-enabled (and run once, to pick up the
        cycles the run did create — nodes, closures, and callbacks refer
        to each other) before returning.
        """
        config = self.config
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.fault_injector.schedule_all(self.simulator, self.network, self.nodes)
            self._start_nodes()
            self._start_load()
            if config.partition_failover:
                self._schedule_partition_failover()
            if self.profiler is not None:
                with self.profiler.phase("event_loop"):
                    self.simulator.run(until=config.duration)
            else:
                self.simulator.run(until=config.duration)
            return self._build_result()
        finally:
            if gc_was_enabled:
                gc.enable()
                # With collection suspended, every container the run
                # allocated (including its cycles) still sits in
                # generation 0, so a young-generation pass reclaims them
                # at a cost bounded by recent survivors — a full collect
                # would walk the whole process heap, which grows across a
                # bench/sweep session.  Generation 1 (not 0) is swept so
                # the previous run's promoted-but-now-dead survivors are
                # also reclaimed here, instead of piling up until the
                # automatic collector walks them inside a later run's
                # measured window.
                gc.collect(1)

    def _start_nodes(self) -> None:
        # Each start-up consumes an RNG draw, so the iteration order is
        # part of the seeded randomness contract: sort by validator id
        # (the construction order, so this is the identity today).
        for _validator, node in sorted(self.nodes.items()):
            # Stagger start-up by a few milliseconds to avoid artificial
            # lock-step behaviour in the very first rounds.
            jitter = self.simulator.rng.uniform(0.0, 0.020)
            self.simulator.schedule(jitter, node.start)

    def _start_load(self) -> None:
        if self.config.load_phases:
            # Phased profile (scenario workloads): explicit (start, end,
            # tps) windows override the constant-rate path.
            phases = [
                LoadPhase(start, end, tps) for start, end, tps in self.config.load_phases
            ]
            self._load_generators = spawn_phased_load(
                simulator=self.simulator,
                targets=self._load_targets(),
                phases=phases,
                on_submit=self.metrics.on_transaction_submitted,
            )
            return
        if self.config.input_load_tps <= 0:
            return
        targets = self._load_targets()
        self._load_generators = spawn_load(
            simulator=self.simulator,
            targets=targets,
            total_rate=self.config.input_load_tps,
            duration=self.config.duration,
            start_time=0.5,
            on_submit=self.metrics.on_transaction_submitted,
        )

    def _load_targets(self) -> List[ValidatorNode]:
        """Validators that receive client load.

        Clients avoid validators that are crashed from the very start of
        the run (as real load generators target responsive endpoints);
        validators affected by faults later in the run still receive load.
        """
        excluded = set()
        for plan in self.fault_injector.plans:
            start = getattr(plan, "at_time", getattr(plan, "crash_at", None))
            if start is not None and start <= 0.5 and hasattr(plan, "validators"):
                excluded.update(plan.validators)
        targets = [
            node for validator, node in sorted(self.nodes.items()) if validator not in excluded
        ]
        return targets if targets else [node for _, node in sorted(self.nodes.items())]

    # -- partition-aware client failover ----------------------------------------

    def _schedule_partition_failover(self) -> None:
        """Retarget clients to the majority side over partition windows.

        Mirrors how real load generators abandon unreachable endpoints:
        while a :class:`PartitionPlan` window is open, every client
        submits only to validators on a side that still holds a stake
        quorum (if no side does, targeting is left alone — there is no
        good side to fail over to); at the heal, clients return to the
        full healthy target set.  Gated by
        ``ExperimentConfig.partition_failover`` so historical partition
        runs keep their recorded digests.
        """
        for plan in self.fault_injector.plans:
            if not isinstance(plan, PartitionPlan):
                continue
            majority = self._majority_side(plan)
            if majority is None:
                continue
            inside = [node for node in self._load_targets() if node.id in majority]
            if not inside:
                continue

            def fail_over(targets=inside) -> None:
                for generator in self._load_generators:
                    generator.set_targets(targets)

            def fail_back() -> None:
                targets = self._load_targets()
                for generator in self._load_generators:
                    generator.set_targets(targets)

            self.simulator.schedule_at(max(plan.start, 0.0), fail_over)
            if plan.end is not None:
                self.simulator.schedule_at(plan.end, fail_back)

    def _majority_side(self, plan: PartitionPlan):
        """The side of ``plan`` holding a stake quorum, if any."""
        listed = {validator for group in plan.groups for validator in group}
        implicit = [v for v in self.committee.validators if v not in listed]
        sides = [tuple(implicit)] + [tuple(group) for group in plan.groups]
        for side in sides:
            if side and self.committee.has_quorum(side):
                return frozenset(side)
        return None

    # -- result assembly -------------------------------------------------------------------

    def _collect_counters(self) -> Dict[str, float]:
        """Always-on counter snapshot (cheap integer reads, no registry).

        The ``memo.*`` entries read process-wide caches whose state
        depends on what ran before in the same process (bench sessions,
        sweep-worker reuse), so they are excluded from every digest and
        run-to-run comparison; everything else is a deterministic
        function of (config, seed).
        """
        from repro.consensus.bullshark import _ORDERING_TOKENS
        from repro.crypto.hashing import BROADCAST_DIGEST_MEMO
        from repro.dag.vertex import intern_table_sizes

        nodes = self.nodes.values()
        stats = self.network.stats
        vector = self.committee.stake_vector
        counters: Dict[str, float] = {
            "sim.events_fired": float(self.simulator.events_fired),
            "net.messages_sent": float(stats.messages_sent),
            "net.messages_delivered": float(stats.messages_delivered),
            "net.messages_dropped": float(stats.messages_dropped),
            "dag.pending_peak": float(max(node.dag.pending_peak for node in nodes)),
            "dag.gc_reclaimed_total": float(
                sum(node.dag.gc_reclaimed_total for node in nodes)
            ),
            "dag.reach_cache_entries": float(
                sum(len(node.dag._reach_cache) for node in nodes)
            ),
            "node.proposals_made": float(sum(node.proposals_made for node in nodes)),
            "node.leader_timeouts": float(
                sum(node.leader_timeouts_suffered for node in nodes)
            ),
            "node.fetch_requests": float(sum(node.fetch_requests_sent for node in nodes)),
            "node.recoveries": float(sum(node.recoveries for node in nodes)),
            "node.certificates_piggybacked": float(
                sum(
                    getattr(node.broadcast_protocol, "certificates_piggybacked", 0)
                    for node in nodes
                )
            ),
            "node.certificates_healed": float(
                sum(
                    getattr(node.broadcast_protocol, "certificates_healed", 0)
                    for node in nodes
                )
            ),
            "memo.broadcast_digest.hits": float(BROADCAST_DIGEST_MEMO.hits),
            "memo.broadcast_digest.misses": float(BROADCAST_DIGEST_MEMO.misses),
            "memo.broadcast_digest.size": float(len(BROADCAST_DIGEST_MEMO)),
            "memo.signer_quorum.hits": float(vector.signer_cache_hits),
            "memo.signer_quorum.misses": float(vector.signer_cache_misses),
            "memo.signer_quorum.size": float(len(vector._signer_quorum_cache)),
            "memo.mask_quorum.hits": float(vector.mask_cache_hits),
            "memo.mask_quorum.misses": float(vector.mask_cache_misses),
            "memo.mask_quorum.size": float(len(vector._mask_quorum_cache)),
            "memo.edge_quorum.size": float(self.committee.edge_quorum_cache_size()),
            "memo.ordering_tokens.size": float(len(_ORDERING_TOKENS)),
        }
        intern_sizes = intern_table_sizes()
        counters["memo.intern.vertex_id.size"] = float(intern_sizes["vertex_id"])
        counters["memo.intern.digest.size"] = float(intern_sizes["digest"])
        if self.tracer is not None:
            counters["trace.events_kept"] = float(len(self.tracer.events))
            counters["trace.events_dropped"] = float(self.tracer.dropped)
            counters["trace.events_sampled_out"] = float(self.tracer.sampled_out)
        return counters

    def _build_result(self) -> ExperimentResult:
        config = self.config
        observer = self.nodes[config.observer]
        self.leader_stats.finalize_skips(
            observer.consensus.last_ordered_anchor_round,
            observer.schedule_manager.leader_for_round,
        )
        crashed = [
            validator for validator in self.committee.validators
            if self.network.is_crashed(validator)
        ]
        alive_nodes = [node for node in self.nodes.values() if not node.crashed]
        report = PerformanceReport(
            system=config.protocol,
            committee_size=config.committee_size,
            faults=config.faults,
            input_load_tps=config.input_load_tps,
            duration=config.duration,
            throughput_tps=self.metrics.throughput(config.duration),
            avg_latency_s=self.metrics.average_latency(),
            p50_latency_s=self.metrics.p50_latency(),
            p95_latency_s=self.metrics.p95_latency(),
            stdev_latency_s=self.metrics.latency.stdev(),
            committed_transactions=self.metrics.committed,
            submitted_transactions=self.metrics.submitted,
            commits=observer.commit_count,
            skipped_anchor_rounds=self.leader_stats.skips,
            leader_timeouts=sum(node.leader_timeouts_suffered for node in alive_nodes),
            schedule_changes=len(observer.schedule_manager.history) - 1,
            extra={
                "events_fired": float(self.simulator.events_fired),
                "messages_delivered": float(self.network.stats.messages_delivered),
                "observer_round": float(observer.current_round),
            },
        )
        ordering_digests = {
            validator: (node.consensus.ordered_count, node.consensus.ordering_digest)
            for validator, node in self.nodes.items()
        }
        ordering_checkpoints = {
            validator: list(node.consensus.ordering_checkpoints)
            for validator, node in self.nodes.items()
        }
        schedule_epochs = {
            validator: node.schedule_manager.epochs for validator, node in self.nodes.items()
        }
        schedule_histories = {
            validator: [
                (schedule.epoch, schedule.initial_round)
                for schedule in node.schedule_manager.history
            ]
            for validator, node in self.nodes.items()
        }
        leader_timeouts = {
            validator: node.leader_timeouts_suffered for validator, node in self.nodes.items()
        }
        counters: Dict[str, Any] = {"always": self._collect_counters()}
        if self.registry is not None:
            counters["detailed"] = self.registry.snapshot()
        return ExperimentResult(
            config=config,
            report=report,
            ordering_digests=ordering_digests,
            ordering_checkpoints=ordering_checkpoints,
            schedule_epochs=schedule_epochs,
            schedule_histories=schedule_histories,
            leader_timeouts=leader_timeouts,
            commits_per_leader=self.leader_stats.commits_per_leader(),
            skipped_rounds_per_leader=self.leader_stats.skipped_rounds_per_leader(),
            crashed_validators=crashed,
            reputation=reputation_metrics(
                observer.schedule_manager,
                faulty=self.fault_injector.affected_validators(),
            ),
            counters=counters,
            trace=self.tracer.export_events() if self.tracer is not None else [],
            profile=self.profiler.snapshot() if self.profiler is not None else {},
        )
