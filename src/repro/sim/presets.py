"""Experiment presets mirroring the paper's deployment parameters.

The paper evaluates committees of 10, 50, and 100 validators on a
geo-distributed testbed, recomputes the HammerHead schedule every 10
commits, excludes the bottom 33% of validators, and observes peak
throughput around 4,000 tx/s (3,500 for the largest committee).  The
presets below choose simulator parameters that land the *shape* of those
results (who saturates where, who wins under faults) without claiming to
match the testbed's absolute numbers.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro.node.config import NodeConfig

# Committee sizes and their maximum tolerable fault counts, as in the paper.
PAPER_COMMITTEES: Tuple[int, ...] = (10, 50, 100)
PAPER_FAULTS: Dict[int, int] = {10: 3, 50: 16, 100: 33}

# The paper's evaluation parameters for the reputation schedule.
PAPER_COMMITS_PER_SCHEDULE = 10
PAPER_EXCLUDE_FRACTION = 1.0 / 3.0
# The more conservative Sui mainnet parameters (footnote 15).
MAINNET_COMMITS_PER_SCHEDULE = 300
MAINNET_EXCLUDE_FRACTION = 0.20


def paper_committee_sizes() -> List[int]:
    """Committee sizes used in Figures 1 and 2."""
    return list(PAPER_COMMITTEES)


def paper_fault_counts() -> Dict[int, int]:
    """Maximum tolerable fault count per committee size (Figure 2)."""
    return dict(PAPER_FAULTS)


def node_config_for(committee_size: int, leader_timeout: float = 4.0) -> NodeConfig:
    """Node parameters tuned per committee size.

    * The vertex batch is sized so that even a committee reduced to
      ``n - f`` proposers can carry the saturation-level load; the binding
      throughput constraint in healthy conditions is the execution
      capacity (see :func:`execution_capacity_for`), exactly as in the
      real system.
    * The minimum round interval grows mildly with the committee size,
      modelling per-round certificate verification cost.
    """
    base = NodeConfig(
        max_batch_size=_batch_size_for(committee_size),
        min_round_interval=0.45,
        leader_timeout=leader_timeout,
        gc_depth=40,
        broadcast="certified",
        record_sequence=False,
    )
    return base.scaled_for_committee(committee_size)


def _batch_size_for(committee_size: int) -> int:
    # The vertex batch is sized so that the alive 2/3 of the committee can
    # include about 1.3x the execution capacity per healthy wave.  The
    # consequences (matching the paper's claims):
    #   * fault-free runs are execution-bound, so both systems peak at the
    #     same throughput (C1);
    #   * HammerHead under faults remains execution-bound because its waves
    #     stay short, so it keeps the fault-free peak (C3);
    #   * baseline Bullshark under faults inflates its wave time waiting
    #     for crashed leaders, its inclusion capacity falls below the
    #     execution capacity, and its peak throughput drops (C2).
    headroom = 1.10
    target_inclusion_tps = headroom * execution_capacity_for(committee_size)
    healthy_wave_seconds = 2.0 * (0.45 + 0.0008 * committee_size + 0.10)
    alive = max(1, (2 * committee_size) // 3)
    per_round = target_inclusion_tps * healthy_wave_seconds / alive
    return max(10, int(round(per_round)))


def execution_capacity_for(committee_size: int) -> float:
    """Per-validator execution/finality pipeline capacity (tx/s).

    Larger committees spend more per-transaction effort on certificate and
    signature handling, which is why the paper's 100-validator runs peak
    slightly lower (3,500 tx/s) than the 10- and 50-validator runs
    (4,000 tx/s).
    """
    return max(1500.0, 4600.0 - 10.0 * committee_size)


def bench_scale() -> str:
    """Benchmark scale selected through the ``REPRO_BENCH_SCALE`` env var.

    * ``quick``  - tiny committees, very short runs (CI smoke runs).
    * ``default`` - reduced committees/durations, preserves all trends.
    * ``paper``  - the paper's committee sizes and longer runs.
    """
    value = os.environ.get("REPRO_BENCH_SCALE", "default").strip().lower()
    if value not in ("quick", "default", "paper"):
        raise ValueError(f"unknown REPRO_BENCH_SCALE value {value!r}")
    return value
