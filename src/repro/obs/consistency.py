"""Committed-prefix consistency checks over ordering checkpoints.

The consensus engine snapshots its rolling ordering digest every
:data:`~repro.consensus.bullshark.ORDERING_CHECKPOINT_INTERVAL` ordered
vertices into ``ordering_checkpoints`` (a list of ``(count, hexdigest)``
pairs).  Because the digest is a pure fold over the ordered sequence,
two chains agree at an aligned count *iff* they ordered the same prefix
of that length — which turns safety and cross-run comparisons into
checkpoint-list walks:

* **Intra-run safety** — every pair of honest validators in one run
  must agree at every aligned checkpoint (a mismatch is an ordering
  safety violation, whatever their final counts are).
* **Cross-run comparison** — two runs whose final digests legitimately
  differ (a lossy run with certificate piggybacking on vs off) are
  compared by their *longest common committed prefix* instead of
  erroring out: they must agree on every aligned checkpoint up to the
  point where their histories genuinely diverge, and the divergence
  point quantifies how much committed history they share.

Chains compared here should include the final ``(ordered_count,
digest)`` position (see :func:`checkpoint_chain`) so two identical runs
compare equal through their full length, not just through the last
periodic checkpoint.

Pure post-processing: no clock, no randomness, no protocol state.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Checkpoint = Tuple[int, str]


@dataclasses.dataclass(frozen=True)
class PrefixComparison:
    """Outcome of comparing two checkpoint chains.

    ``common_prefix`` is the highest aligned ordered-count at which both
    chains carry the same digest (0 when no aligned checkpoint agrees);
    ``first_divergence`` is the lowest aligned count where the digests
    differ (``None`` when the chains never contradict each other —
    i.e. one run's committed history is, as far as the checkpoints can
    resolve, a prefix of the other's).
    """

    common_prefix: int
    first_divergence: Optional[int]
    left_count: int
    right_count: int

    @property
    def consistent(self) -> bool:
        """True when no aligned checkpoint contradicts the other chain."""
        return self.first_divergence is None

    def describe(self) -> str:
        base = (
            f"common committed prefix {self.common_prefix} "
            f"(left ordered {self.left_count}, right ordered {self.right_count})"
        )
        if self.first_divergence is not None:
            return base + f"; diverged by ordered position {self.first_divergence}"
        return base + "; no divergence at any aligned checkpoint"


def checkpoint_chain(
    checkpoints: Sequence[Checkpoint], final: Optional[Checkpoint] = None
) -> List[Checkpoint]:
    """A comparison chain: the periodic checkpoints plus the final position.

    ``final`` is the ``(ordered_count, digest)`` pair a run ends on
    (``ExperimentResult.ordering_digests[validator]``); it is appended
    when it extends past the last periodic checkpoint so equal-length
    runs compare through their full committed sequence.
    """
    chain = list(checkpoints)
    if final is not None and final[0] > 0:
        if not chain or final[0] > chain[-1][0]:
            chain.append((final[0], final[1]))
    return chain


def compare_prefixes(
    left: Sequence[Checkpoint], right: Sequence[Checkpoint]
) -> PrefixComparison:
    """Compare two checkpoint chains at their aligned ordered-counts.

    Only counts present in both chains can be compared (checkpoints fall
    on fixed multiples, so honest chains align; the final positions only
    align when the runs ordered equally much).  Each chain must be
    ascending in count — they are recorded that way.
    """
    left_index: Dict[int, str] = {count: digest for count, digest in left}
    common = 0
    divergence: Optional[int] = None
    for count, digest in right:
        expected = left_index.get(count)
        if expected is None:
            continue
        if expected == digest:
            if count > common:
                common = count
        elif divergence is None or count < divergence:
            divergence = count
    left_count = left[-1][0] if left else 0
    right_count = right[-1][0] if right else 0
    return PrefixComparison(
        common_prefix=common,
        first_divergence=divergence,
        left_count=left_count,
        right_count=right_count,
    )


def check_run_consistency(
    ordering_digests: Dict[int, Tuple[int, str]],
    ordering_checkpoints: Dict[int, Sequence[Checkpoint]],
    validators: Optional[Iterable[int]] = None,
) -> List[str]:
    """Intra-run safety: all validators' committed prefixes must agree.

    Every validator's chain is compared against every other's; any
    aligned checkpoint mismatch (including final positions at equal
    counts) is an ordering safety violation.  Returns a list of
    violation descriptions — empty means the run is prefix-consistent.
    Validators that ordered nothing are trivially consistent.
    """
    ids = sorted(validators) if validators is not None else sorted(ordering_digests)
    chains = {
        validator: checkpoint_chain(
            ordering_checkpoints.get(validator, ()),
            ordering_digests.get(validator),
        )
        for validator in ids
    }
    violations: List[str] = []
    for position, left_id in enumerate(ids):
        for right_id in ids[position + 1:]:
            comparison = compare_prefixes(chains[left_id], chains[right_id])
            if not comparison.consistent:
                violations.append(
                    f"validators {left_id} and {right_id} diverge by ordered "
                    f"position {comparison.first_divergence} "
                    f"(common prefix {comparison.common_prefix})"
                )
    return violations
