"""Recovery-latency mining: how long lost certificates stall the DAG.

A loss window drops ``CertificateMessage`` / ``CertificateBatch``
envelopes on the wire.  The receiver notices only when a later vertex
references the missing parent: the child is *parked*
(``vertex_parked``), the synchronizer arranges recovery (a piggybacked
stash heal or an explicit fetch round-trip), and the child is
*promoted* (``vertex_promoted``) once the parent lands.  The headline
**recovery latency** is that park-to-promote gap: it is conditioned on
"needed and missing" — the same denominator in piggyback-on and
piggyback-off runs even though their post-window histories diverge —
and it is exactly the stall the piggyback stash collapses (the heal
fires at park time, where the fetch path waits out a timeout plus a
round-trip).

Two supporting populations are mined alongside:

* **Drop-to-rearrival** gaps: each ``message_dropped`` event with
  ``reason == "loss"`` and a certificate ``type`` (the transport
  enriches those with ``destination``/``origin``/``round``) joined to
  the first subsequent reappearance of that vertex at the destination —
  via ``payload_delivered`` (certificate layer: ``node``, ``origin``,
  ``round``) or ``vertex_inserted`` / ``vertex_promoted`` (DAG layer:
  ``node``, ``round``, ``source``).  Both arrival kinds count: a fetch
  response bypasses the certificate layer entirely.
* Drop accounting: ``redundant_drops`` (the destination already held
  the vertex when the envelope was dropped) and ``unrecovered`` (the
  vertex never reappeared — the run ended, or the destination never
  needed it because its quorums were met by other parents).

Mining the trace instead of instrumenting the protocol keeps the hot
path untouched and works identically for both variants, which is what
the lossy-recovery bench stage and CI gate compare.  Pure
post-processing: no clock, no randomness.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.metrics.latency import LatencyStats

#: Message types whose loss removes certificate information from a peer.
CERTIFICATE_TYPES: Tuple[str, ...] = ("CertificateMessage", "CertificateBatch")


@dataclasses.dataclass(frozen=True)
class RecoveryReport:
    """Mined recovery behaviour of one traced run.

    ``stalls`` holds one park-to-promote gap per parked vertex that was
    eventually promoted (the headline recovery latency);
    ``unpromoted`` counts vertices parked and never promoted before the
    run ended.  ``drop_samples`` holds one drop-to-rearrival gap per
    certificate loss drop that was later healed; ``redundant_drops``
    and ``unrecovered`` complete the drop accounting.
    """

    stalls: Tuple[float, ...]
    unpromoted: int
    drop_samples: Tuple[float, ...]
    redundant_drops: int
    unrecovered: int

    @property
    def certificate_drops(self) -> int:
        return len(self.drop_samples) + self.redundant_drops + self.unrecovered

    def latency(self) -> LatencyStats:
        stats = LatencyStats()
        stats.extend(self.stalls)
        return stats

    def summary(self) -> Dict[str, float]:
        """Percentile summary of the stalls plus drop accounting, JSON-ready."""
        summary = self.latency().summary()
        summary["unpromoted"] = float(self.unpromoted)
        drop_stats = LatencyStats()
        drop_stats.extend(self.drop_samples)
        summary["drop_count"] = float(len(self.drop_samples))
        summary["drop_p50"] = drop_stats.p50()
        summary["drop_max"] = drop_stats.maximum()
        summary["certificate_drops"] = float(self.certificate_drops)
        summary["redundant_drops"] = float(self.redundant_drops)
        summary["unrecovered"] = float(self.unrecovered)
        return summary


def _certificate_key(event: Dict[str, Any]) -> Optional[Tuple[int, int, int]]:
    """(destination, origin, round) of a certificate loss drop, else None."""
    if event.get("kind") != "message_dropped" or event.get("reason") != "loss":
        return None
    if event.get("type") not in CERTIFICATE_TYPES:
        return None
    origin = event.get("origin")
    round_number = event.get("round")
    destination = event.get("destination")
    if origin is None or round_number is None or destination is None:
        return None
    return (destination, origin, round_number)


def mine_recovery(events: Iterable[Dict[str, Any]]) -> RecoveryReport:
    """Mine park-to-promote stalls and drop-to-rearrival gaps.

    One pass indexes arrivals (certificate deliveries and DAG
    insertions) and promotions per ``(node, origin, round)``; a second
    pass joins each park to its promotion and each certificate drop to
    the earliest arrival at (or after) the drop time.
    """
    events = list(events)
    arrivals: Dict[Tuple[int, int, int], List[float]] = {}
    promotions: Dict[Tuple[int, int, int], List[float]] = {}
    for event in events:
        kind = event.get("kind")
        if kind == "payload_delivered":
            origin = event.get("origin")
        elif kind in ("vertex_inserted", "vertex_promoted"):
            origin = event.get("source")
        else:
            continue
        node = event.get("node")
        round_number = event.get("round")
        if node is None or origin is None or round_number is None:
            continue
        key = (node, origin, round_number)
        arrivals.setdefault(key, []).append(event["t"])
        if kind == "vertex_promoted":
            promotions.setdefault(key, []).append(event["t"])

    stalls: List[float] = []
    unpromoted = 0
    drop_samples: List[float] = []
    redundant = 0
    unrecovered = 0
    for event in events:
        kind = event.get("kind")
        if kind == "vertex_parked":
            key = (event.get("node"), event.get("source"), event.get("round"))
            parked_at = event["t"]
            promoted_at = _earliest_at_or_after(promotions.get(key), parked_at)
            if promoted_at is None:
                unpromoted += 1
            else:
                stalls.append(promoted_at - parked_at)
            continue
        key = _certificate_key(event)
        if key is None:
            continue
        dropped_at = event["t"]
        times = arrivals.get(key)
        if times is not None and any(t < dropped_at for t in times):
            # The destination already held the vertex: no information lost.
            redundant += 1
            continue
        healed_at = _earliest_at_or_after(times, dropped_at)
        if healed_at is None:
            unrecovered += 1
        else:
            drop_samples.append(healed_at - dropped_at)
    return RecoveryReport(
        stalls=tuple(stalls),
        unpromoted=unpromoted,
        drop_samples=tuple(drop_samples),
        redundant_drops=redundant,
        unrecovered=unrecovered,
    )


def _earliest_at_or_after(times: Optional[List[float]], after: float) -> Optional[float]:
    best: Optional[float] = None
    if times:
        for t in times:
            if t >= after and (best is None or t < best):
                best = t
    return best


def recovery_summary(events: Iterable[Dict[str, Any]]) -> Dict[str, float]:
    """Convenience wrapper: mine ``events`` and return the summary dict."""
    return mine_recovery(events).summary()
