"""Opt-in wall-clock profiler.

This is the one observability module allowed to read the host clock, and
it is allowlisted as such: ``AnalyzerConfig.wallclock_allowlist`` ships
with ``repro.obs.profiler`` in it, and the auditor self-check test pins
that the module stays *outside* the digest purity closure — nothing on
the commit path may import it.  The runner imports it lazily and only
when ``ExperimentConfig.profile`` is set.

Attribution is self-time by phase: a stack of phase names, where the
interval since the last transition is charged to the phase on top.  The
runner opens an ``event_loop`` phase around ``simulator.run`` and
instruments the per-node hot entry points (RBC message handlers, the
commit path, scoring hooks), so time spent inside a nested phase is
subtracted from its parent.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List

PHASE_EVENT_LOOP = "event_loop"
PHASE_RBC = "rbc"
PHASE_COMMIT = "commit_path"
PHASE_SCORING = "scoring"


class WallclockProfiler:
    """Self-time phase profiler with zero simulation-visible effects."""

    def __init__(self) -> None:
        self.phases: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self._stack: List[str] = []
        self._last = 0.0

    def _charge(self, now: float) -> None:
        if self._stack:
            top = self._stack[-1]
            self.phases[top] = self.phases.get(top, 0.0) + (now - self._last)
        self._last = now

    def push(self, phase: str) -> None:
        self._charge(perf_counter())
        self._stack.append(phase)
        self.calls[phase] = self.calls.get(phase, 0) + 1

    def pop(self) -> None:
        self._charge(perf_counter())
        if self._stack:
            self._stack.pop()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    def wrap(self, phase: str, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Wrap a callable so its execution is charged to ``phase``."""

        def _profiled(*args: Any, **kwargs: Any) -> Any:
            self.push(phase)
            try:
                return fn(*args, **kwargs)
            finally:
                self.pop()

        return _profiled

    def instrument_node(self, node: Any) -> None:
        """Shadow a validator node's hot entry points with profiled
        wrappers.

        All three interception points are *instance* attributes, so the
        classes are untouched and the wrappers die with the run:

        - ``consensus.try_commit`` — every internal call site reads it
          through ``self.try_commit``, so shadowing the instance
          attribute catches them all (the commit path).
        - ``schedule_manager.on_vertex_ordered`` — the per-vertex
          scoring hook, read through the manager attribute.
        - the values of ``node._message_handlers`` — bound handler
          methods captured in a dispatch dict; rebinding the dict values
          wraps RBC/fetch dispatch without touching the network-facing
          ``_on_network_message`` (whose bound reference the transport
          captured at registration).

        A node that recovers mid-run rebuilds these objects and sheds
        the wrappers; profiles of crash-recovery runs undercount those
        nodes after the recovery point, which is acceptable for an
        opt-in diagnostic.
        """
        node.consensus.try_commit = self.wrap(PHASE_COMMIT, node.consensus.try_commit)
        node.schedule_manager.on_vertex_ordered = self.wrap(
            PHASE_SCORING, node.schedule_manager.on_vertex_ordered
        )
        handlers = node._message_handlers
        for message_type in list(handlers):
            handlers[message_type] = self.wrap(PHASE_RBC, handlers[message_type])

    def snapshot(self) -> Dict[str, Any]:
        phases = {
            name: {
                "self_seconds": self.phases[name],
                "calls": self.calls.get(name, 0),
            }
            for name in sorted(self.phases)
        }
        return {
            "phases": phases,
            "total_seconds": sum(self.phases.values()),
        }
