"""Instrumentation registry: counters, gauges, and histograms.

The registry is the *detailed* tier of instrumentation — it only exists
when a run asks for observability (``ExperimentConfig.trace``), so the
per-message accounting it performs never taxes a plain benchmark run.
The cheap always-on tier (``NetworkStats``, DAG park/GC watermarks, memo
hit counters) lives on the components themselves and is folded together
with a registry snapshot by ``repro.sim.runner``.

Everything snapshots to plain sorted dicts so counter blocks embed
directly in ``ExperimentResult`` and scenario artifact points.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class Histogram:
    """Streaming summary: count / total / min / max (enough to recover a
    mean without retaining samples)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, Any]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total": self.total,
            "mean": mean,
            "min": self.min,
            "max": self.max,
        }


class InstrumentationRegistry:
    """Named counters, gauges, and histograms.

    Not shared across processes: in a parallel sweep each worker builds
    its own registry per run, and the snapshot rides home inside the
    picklable ``ExperimentResult``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    def count_message(self, message: Any, copies: int = 1) -> None:
        """Account one logical send of ``message`` fanned out ``copies``
        times: per-type message count plus estimated wire bytes."""
        name = type(message).__name__
        self.inc(f"messages.{name}", copies)
        self.inc(f"bytes.{name}", estimate_wire_bytes(message) * copies)

    def snapshot(self) -> Dict[str, Any]:
        snap: Dict[str, Any] = {}
        if self._counters:
            snap["counters"] = {name: self._counters[name] for name in sorted(self._counters)}
        if self._gauges:
            snap["gauges"] = {name: self._gauges[name] for name in sorted(self._gauges)}
        if self._histograms:
            snap["histograms"] = {
                name: self._histograms[name].snapshot() for name in sorted(self._histograms)
            }
        return snap


# Deterministic wire-size model.  The simulator never serializes
# messages, so "bytes" here is a stable structural estimate — envelope
# plus per-field costs — good for relative comparisons across runs and
# committee sizes, not an exact codec size.
_ENVELOPE_BYTES = 64  # type tag, origin, round, digest, framing
_SIGNER_BYTES = 8
_EDGE_BYTES = 40  # (round, source, digest) reference
_TRANSACTION_BYTES = 128
_VERTEX_HEADER_BYTES = 48


def _payload_bytes(payload: Any) -> int:
    edges = getattr(payload, "edges", None)
    block = getattr(payload, "block", None)
    if edges is None and block is None:
        return _VERTEX_HEADER_BYTES
    size = _VERTEX_HEADER_BYTES
    if edges is not None:
        size += _EDGE_BYTES * len(edges)
    if block is not None:
        size += _TRANSACTION_BYTES * len(block)
    return size


def estimate_wire_bytes(message: Any) -> int:
    """Structural wire-size estimate for any protocol message."""
    certificates = getattr(message, "certificates", None)
    if certificates is not None:
        return _ENVELOPE_BYTES + sum(estimate_wire_bytes(cert) for cert in certificates)
    size = _ENVELOPE_BYTES
    payload = getattr(message, "payload", None)
    if payload is not None:
        size += _payload_bytes(payload)
    signers = getattr(message, "signers", None)
    if signers is not None:
        size += _SIGNER_BYTES * len(signers)
    vertices = getattr(message, "vertices", None)
    if vertices is not None:
        size += sum(_payload_bytes(vertex) for vertex in vertices)
    missing = getattr(message, "missing", None)
    if missing is not None:
        size += _EDGE_BYTES * len(missing)
    return size
