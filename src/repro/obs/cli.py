"""The ``python -m repro.obs`` observability command line.

Subcommands::

    trace NAME|--spec F        run a scenario with the deterministic
                               tracer on and write the event JSONL
    timeline TRACE.jsonl       per-validator commit/skip/schedule
                               timeline rendered from a trace
    explain TRACE.jsonl        causal queries: --anchor R (why was that
                               anchor skipped), --first-skip (explain
                               the first skipped anchor), --demotion V
                               (what evidence demoted validator V)
    profile NAME|--spec F      run with the wall-clock profiler and
                               print per-phase self-time (event loop,
                               RBC, commit path, scoring)

Follows the scenarios/analysis exit contract (``repro.cliutil``):
0 success, 1 findings, 2 operational errors with a stderr ``error:``
line, 0 on a broken pipe.  Tracing is digest-neutral — ``trace``
produces the exact artifact digests a plain run does.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cliutil import run_guarded
from repro.obs import query


def _load_spec(args: argparse.Namespace):
    # Same name-or---spec/--smoke resolution the scenarios CLI uses.
    from repro.scenarios.cli import _load_spec as load

    return load(args)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.scenarios.runner import run_scenario, write_artifact

    spec = _load_spec(args)
    seeds = args.seeds if args.seeds else None
    suffix = "-smoke" if args.smoke else ""
    trace_path = args.output or f"trace-{spec.name}{suffix}.jsonl"
    print(f"Tracing scenario {spec.name!r} ...")
    artifact = run_scenario(
        spec,
        seeds=seeds,
        parallelism=args.parallelism,
        trace_path=trace_path,
    )
    events = query.load_trace(trace_path)
    print(f"wrote trace {trace_path} ({len(events)} events)")
    for line in query.summarize_kinds(events):
        print(line)
    print(f"scenario_digest: {artifact['scenario_digest']}")
    for point in artifact["points"]:
        print(
            f"  {point['label']} seed {point['seed']}: "
            f"ordering_digest {point['ordering_digest'][:16]}..."
        )
    if args.artifact:
        write_artifact(artifact, args.artifact)
        print(f"wrote {args.artifact}")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    events = query.select_point(query.load_trace(args.trace), args.point)
    for line in query.render_timeline(events, validator=args.validator, limit=args.limit):
        print(line)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    events = query.select_point(query.load_trace(args.trace), args.point)
    if args.demotion is not None:
        lines = query.explain_demotion(events, args.demotion, observer=args.validator)
    else:
        observer = query.observer_node(events) if args.validator is None else args.validator
        if args.first_skip:
            round_number = query.first_skipped_round(events, observer)
        else:
            round_number = args.anchor
        lines = query.explain_anchor(events, round_number, validator=observer)
    for line in lines:
        print(line)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.sim.experiment import run_experiment
    from repro.scenarios.spec import compile_spec

    spec = _load_spec(args)
    points = compile_spec(spec, seed=args.seed)
    for point in points:
        config = point.config.with_overrides(profile=True)
        print(f"profiling {config.label()} (seed {config.seed}) ...")
        result = run_experiment(config)
        profile = result.profile
        phases = profile.get("phases", {})
        width = max((len(name) for name in phases), default=10)
        print(f"  {'phase'.ljust(width)}  {'self_s':>9}  {'calls':>9}")
        for name, stats in phases.items():
            print(
                f"  {name.ljust(width)}  {stats['self_seconds']:9.4f}  {stats['calls']:9d}"
            )
        print(f"  {'total'.ljust(width)}  {profile.get('total_seconds', 0.0):9.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    trace = commands.add_parser("trace", help="run a scenario with tracing and write JSONL")
    _add_spec_arguments(trace)
    trace.add_argument("--seeds", type=int, nargs="+", default=None, help="seeds to fan out over")
    trace.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="sweep worker processes (default: REPRO_SWEEP_PARALLELISM or CPU count)",
    )
    trace.add_argument(
        "--output", default=None, help="trace JSONL path (default: trace-<name>.jsonl)"
    )
    trace.add_argument(
        "--artifact", default=None, help="also write the scenario artifact JSON here"
    )

    timeline = commands.add_parser("timeline", help="render a commit/skip timeline")
    timeline.add_argument("trace", help="trace JSONL file")
    timeline.add_argument("--validator", type=int, default=None, help="perspective validator id")
    timeline.add_argument("--point", default=None, help="scenario point label (default: first)")
    timeline.add_argument("--limit", type=int, default=None, help="maximum rows")

    explain = commands.add_parser("explain", help="causal query over a trace")
    explain.add_argument("trace", help="trace JSONL file")
    what = explain.add_mutually_exclusive_group(required=True)
    what.add_argument("--anchor", type=int, help="explain the skip of anchor round R")
    what.add_argument(
        "--first-skip", action="store_true", help="explain the first skipped anchor"
    )
    what.add_argument("--demotion", type=int, help="explain what demoted validator V")
    explain.add_argument("--validator", type=int, default=None, help="perspective validator id")
    explain.add_argument("--point", default=None, help="scenario point label (default: first)")

    profile = commands.add_parser("profile", help="wall-clock per-phase profile of a scenario")
    _add_spec_arguments(profile)
    profile.add_argument("--seed", type=int, default=None, help="seed override")
    return parser


def _add_spec_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("name", nargs="?", help="a registered scenario name")
    subparser.add_argument("--spec", help="path to a scenario spec JSON file")
    subparser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink to a tiny committee and short horizon (CI smoke run)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in ("trace", "profile") and not (args.name or args.spec):
        parser.error("give a scenario name or --spec FILE")
    handlers = {
        "trace": _cmd_trace,
        "timeline": _cmd_timeline,
        "explain": _cmd_explain,
        "profile": _cmd_profile,
    }
    return run_guarded(lambda: handlers[args.command](args))


if __name__ == "__main__":
    sys.exit(main())
