"""Digest-neutral observability: deterministic tracing + instrumentation.

Import surface is deliberately lean: only the trace core and the counter
registry live here.  The wall-clock profiler (``repro.obs.profiler``) and
the CLI are *never* imported from this package root so that the hot
modules which import :mod:`repro.obs.trace` can never drag wall-clock
code into the digest purity closure.
"""

from repro.obs.registry import InstrumentationRegistry
from repro.obs.trace import (
    EVENT_KINDS,
    NULL_TRACER,
    MemoryTracer,
    NullTracer,
    Tracer,
)

__all__ = [
    "EVENT_KINDS",
    "NULL_TRACER",
    "InstrumentationRegistry",
    "MemoryTracer",
    "NullTracer",
    "Tracer",
]
