"""Deterministic protocol tracing.

The tracer mirrors the zero-overhead idiom of
:class:`repro.behavior.policy.HonestPolicy`: instrumented components hold
a class-level ``_tracer = NULL_TRACER`` / ``_tracing = False`` pair, so a
run without tracing pays exactly one attribute load and one boolean test
per already-rare site — the common hot paths (message delivery, digest
updates) carry no check at all.

Events are plain dicts — ``{"kind": ..., "t": <sim time>, ...}`` — so a
trace survives a round-trip through the sweep engine's process pool
without custom pickling, and serializes to JSONL with nothing but
:mod:`json`.

This module sits inside the digest purity closure (the commit-path
modules import ``NULL_TRACER`` from here), so it must stay clean under
the determinism auditor: no randomness, no wall clock, no unordered
iteration into order-sensitive sinks.  Timestamps come from the
*simulation* clock injected by the runner.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Dict, List, Optional, TextIO, Tuple

# Catalogue of every event kind the instrumentation points can emit,
# with the fields a consumer can rely on.  ``repro.obs.query`` and the
# README events table are generated from / checked against this.
EVENT_KINDS: Tuple[Tuple[str, str], ...] = (
    ("vertex_proposed", "node proposed a vertex: round, parents, batch size"),
    ("vertex_certified", "2f+1 acks collected: round, signers"),
    ("payload_delivered", "certificate accepted, payload handed to the DAG: round, origin"),
    ("vertex_parked", "vertex waited on missing parents: round, source, missing"),
    ("vertex_inserted", "vertex entered the local DAG: round, source"),
    ("vertex_promoted", "parked vertex completed and was inserted: round, source"),
    ("vertex_ordered", "vertex emitted in the total order: round, source, anchor_round, latency"),
    ("anchor_committed", "anchor gathered quorum: round, leader, direct, vertices"),
    ("anchor_skipped", "anchor round skipped: round, leader, anchor_present, direct_stake, threshold"),
    ("state_sync", "node fast-forwarded past a horizon: from_round, to_round"),
    ("dag_gc", "garbage collection reclaimed vertices: before_round, removed"),
    ("schedule_change", "leader schedule rotated: epoch, scores, demoted, promoted"),
    ("adversary_parents", "behavior policy rewrote the parent set: round, honest, chosen"),
    ("adversary_proposal_delay", "behavior policy delayed a proposal: round, delay"),
    ("adversary_ack_withheld", "behavior policy withheld an ack: round, origin"),
    ("behavior_window_open", "a BehaviorFault installed policies: validators, policy, coordinated"),
    ("behavior_window_close", "a BehaviorFault restored honest policies: validators"),
    ("message_dropped", "transport dropped a message: sender, destination, type, reason; loss drops add the window token, broadcast envelopes add origin/round"),
    ("certificate_healed", "piggybacked certificate healed a missing vertex before a fetch: round, origin"),
    ("partition_set", "transport partition installed: groups"),
    ("partition_cleared", "transport partition removed"),
    ("disturbance_open", "jitter/loss window opened: token, jitter, loss_rate"),
    ("disturbance_close", "jitter/loss window closed: token"),
    ("validator_crashed", "transport marked a validator crashed: validator"),
    ("validator_recovered", "transport unmarked a crashed validator: validator"),
    ("trace_truncated", "bounded tracer dropped its oldest events: dropped, kept"),
    ("trace_sampled", "tracer kept only every Nth event: sample_every, sampled_out, kept"),
)

KNOWN_KINDS: Tuple[str, ...] = tuple(kind for kind, _ in EVENT_KINDS)


class Tracer:
    """Base tracer.  ``enabled`` gates every instrumentation site."""

    enabled: bool = False

    def emit(self, kind: str, **fields: Any) -> None:  # pragma: no cover - overridden
        """Record one event.  The base class drops it."""


class NullTracer(Tracer):
    """Zero-overhead sink: instrumented sites skip payload construction
    entirely because ``enabled`` is False; if one emits anyway the event
    vanishes without allocation."""

    __slots__ = ()

    def emit(self, kind: str, **fields: Any) -> None:
        return None


#: Process-wide default installed as the class attribute of every
#: instrumented component; a run that never asks for tracing shares it.
NULL_TRACER = NullTracer()


class MemoryTracer(Tracer):
    """Collects events in memory, stamped with the simulation clock.

    ``clock`` is injected by the runner (``simulator.now``); the tracer
    itself never reads a wall clock, keeping it purity-clean.

    ``max_events`` turns the tracer into a bounded ring buffer: at most
    that many events are held, the *oldest* are evicted first, and the
    eviction count is kept in ``dropped``.  A committee-100 traced run
    emits millions of events; the ring bound makes tracing usable there
    without holding the full stream in memory.  Exports of a truncated
    trace are prefixed with one ``trace_truncated`` marker event (see
    :meth:`export_events`) so JSONL consumers can tell a bounded trace
    from a complete one.

    ``sample_every`` thins the stream at the emit site instead: the
    first event of every stride of N is kept, the other N-1 are counted
    in ``sampled_out`` and discarded before any allocation hits the
    buffer.  Where the ring bound keeps the *newest* window of a run,
    sampling keeps a uniform cross-section of the *whole* run; the two
    compose (the ring bound applies to the sampled stream).  Exports of
    a sampled trace carry one ``trace_sampled`` marker event.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        max_events: Optional[int] = None,
        sample_every: Optional[int] = None,
    ) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else _zero_clock
        self.max_events = max_events
        if sample_every is not None and sample_every < 1:
            raise ValueError("sample_every must be positive (or None)")
        self.sample_every = sample_every
        # deque(maxlen=N) evicts from the head on append at capacity —
        # exactly the ring-buffer semantics — at C speed.
        self.events: Any = deque(maxlen=max_events) if max_events else []
        self.dropped = 0
        self.sampled_out = 0
        self._emitted = 0

    def emit(self, kind: str, **fields: Any) -> None:
        sample_every = self.sample_every
        if sample_every is not None and sample_every > 1:
            emitted = self._emitted
            self._emitted = emitted + 1
            if emitted % sample_every:
                self.sampled_out += 1
                return
        event: Dict[str, Any] = {"kind": kind, "t": self.clock()}
        event.update(fields)
        events = self.events
        if self.max_events is not None and len(events) == self.max_events:
            self.dropped += 1
        events.append(event)

    def export_events(self) -> List[Dict[str, Any]]:
        """The retained events as a list, truncation/sampling markers included.

        When the ring bound evicted anything, the first element is a
        ``trace_truncated`` event carrying ``dropped`` (evicted count)
        and ``kept`` (retained count), stamped with the timestamp of the
        oldest retained event; consumers of the JSONL can rely on the
        marker being first.  A sampled stream (``sample_every`` > 1)
        additionally carries one ``trace_sampled`` marker — after the
        truncation marker when both apply, first otherwise.
        """
        events = list(self.events)
        markers: List[Dict[str, Any]] = []
        first_t = events[0]["t"] if events else 0.0
        if self.dropped:
            markers.append(
                {
                    "kind": "trace_truncated",
                    "t": first_t,
                    "dropped": self.dropped,
                    "kept": len(events),
                }
            )
        if self.sample_every is not None and self.sample_every > 1:
            markers.append(
                {
                    "kind": "trace_sampled",
                    "t": first_t,
                    "sample_every": self.sample_every,
                    "sampled_out": self.sampled_out,
                    "kept": len(events),
                }
            )
        if markers:
            return [*markers, *events]
        return events

    def __len__(self) -> int:
        return len(self.events)


def _zero_clock() -> float:
    return 0.0


def event_lines(events: List[Dict[str, Any]], **tags: Any) -> List[str]:
    """Render events as JSONL lines, each merged with ``tags`` (point
    label, seed, ...).  ``sort_keys`` keeps the byte stream deterministic
    regardless of emit-site kwarg order."""
    lines: List[str] = []
    for event in events:
        if tags:
            merged = dict(event)
            merged.update(tags)
        else:
            merged = event
        lines.append(json.dumps(merged, sort_keys=True, separators=(",", ":")))
    return lines


def write_events(stream: TextIO, events: List[Dict[str, Any]], **tags: Any) -> int:
    """Write events to ``stream`` as JSONL; returns the number written."""
    for line in event_lines(events, **tags):
        stream.write(line)
        stream.write("\n")
    return len(events)
