"""Causal queries over a recorded trace.

Pure post-processing: load a JSONL trace written by ``repro.obs trace``
(or ``repro.scenarios run --trace``) and answer the questions the
aggregate artifact metrics cannot — *why* was anchor round r skipped,
what evidence demoted validator v.  Everything here renders to plain
text lines so the CLI stays a thin shell.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError

Event = Dict[str, Any]


def load_trace(path: str) -> List[Event]:
    """Load a JSONL trace.  Malformed lines are a ``ReproError`` (exit 2
    through the CLI contract); missing files surface as ``OSError`` from
    ``open`` and take the same exit path."""
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as stream:
        for number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ReproError(f"{path}:{number}: not valid trace JSONL ({error})") from error
            if not isinstance(event, dict) or "kind" not in event:
                raise ReproError(f"{path}:{number}: trace event missing 'kind'")
            events.append(event)
    if not events:
        raise ReproError(f"{path}: trace is empty")
    return events


def point_labels(events: Sequence[Event]) -> List[str]:
    """Distinct point labels in first-appearance order."""
    labels: List[str] = []
    for event in events:
        label = event.get("point")
        if label is not None and label not in labels:
            labels.append(label)
    return labels


def select_point(events: Sequence[Event], point: Optional[str]) -> List[Event]:
    """Restrict a trace to one scenario point (default: the first)."""
    labels = point_labels(events)
    if not labels:
        return list(events)
    if point is None:
        point = labels[0]
    elif point not in labels:
        raise ReproError(
            f"unknown point {point!r}; trace contains: {', '.join(labels)}"
        )
    return [event for event in events if event.get("point") == point]


def observer_node(events: Sequence[Event]) -> int:
    """Default perspective: the lowest validator id that recorded anchor
    activity (every honest node orders identically, so any one works)."""
    nodes = sorted(
        {
            event["node"]
            for event in events
            if "node" in event and event["kind"] in ("anchor_committed", "anchor_skipped")
        }
    )
    if not nodes:
        raise ReproError("trace contains no anchor events (was tracing enabled?)")
    return nodes[0]


def _crashed_at(events: Sequence[Event], validator: int, at: float) -> bool:
    crashed = False
    for event in events:
        if event["t"] > at:
            break
        if event.get("validator") != validator:
            continue
        if event["kind"] == "validator_crashed":
            crashed = True
        elif event["kind"] == "validator_recovered":
            crashed = False
    return crashed


def _behavior_windows_at(
    events: Sequence[Event], validator: int, at: float
) -> List[Event]:
    open_windows: Dict[Any, Event] = {}
    for event in events:
        if event["t"] > at:
            break
        if event["kind"] == "behavior_window_open" and validator in event.get("validators", ()):
            open_windows[event.get("window", event["t"])] = event
        elif event["kind"] == "behavior_window_close" and validator in event.get("validators", ()):
            open_windows.pop(event.get("window", None), None)
    return list(open_windows.values())


def _partition_at(events: Sequence[Event], at: float) -> Optional[Event]:
    active: Optional[Event] = None
    for event in events:
        if event["t"] > at:
            break
        if event["kind"] == "partition_set":
            active = event
        elif event["kind"] == "partition_cleared":
            active = None
    return active


def render_timeline(
    events: Sequence[Event],
    validator: Optional[int] = None,
    limit: Optional[int] = None,
) -> List[str]:
    """Per-validator commit/skip/schedule timeline as aligned text rows."""
    node = observer_node(events) if validator is None else validator
    rows: List[str] = [f"timeline for validator {node}"]
    count = 0
    for event in events:
        if event.get("node") != node:
            continue
        kind = event["kind"]
        if kind == "anchor_committed":
            mode = "direct" if event.get("direct") else "indirect"
            line = (
                f"  t={event['t']:9.3f}  r={event['round']:<5d} commit  "
                f"leader={event['leader']:<3d} {mode}, {event.get('vertices', 0)} vertices"
            )
        elif kind == "anchor_skipped":
            reason = "no anchor vertex" if not event.get("anchor_present") else (
                f"stake {event.get('direct_stake')}/{event.get('threshold')}"
            )
            line = (
                f"  t={event['t']:9.3f}  r={event['round']:<5d} skip    "
                f"leader={event['leader']:<3d} {reason}"
            )
        elif kind == "schedule_change":
            demoted = ",".join(str(v) for v in event.get("demoted", ())) or "-"
            line = (
                f"  t={event['t']:9.3f}  r={event['triggered_by_round']:<5d} "
                f"schedule epoch={event['epoch']} demoted=[{demoted}]"
            )
        else:
            continue
        rows.append(line)
        count += 1
        if limit is not None and count >= limit:
            rows.append(f"  ... truncated at {limit} rows")
            break
    if count == 0:
        raise ReproError(f"validator {node} has no anchor/schedule events in this trace")
    return rows


def first_skipped_round(events: Sequence[Event], validator: int) -> int:
    for event in events:
        if event["kind"] == "anchor_skipped" and event.get("node") == validator:
            return event["round"]
    raise ReproError("trace contains no skipped anchors")


def explain_anchor(
    events: Sequence[Event],
    round_number: int,
    validator: Optional[int] = None,
) -> List[str]:
    """Why was anchor round ``round_number`` skipped (or not)?"""
    node = observer_node(events) if validator is None else validator
    mine = [event for event in events if event.get("node") == node]
    for event in mine:
        if event["kind"] == "anchor_committed" and event["round"] == round_number:
            mode = "directly" if event.get("direct") else "indirectly"
            return [
                f"anchor r={round_number} was not skipped on validator {node}: "
                f"committed {mode} at t={event['t']:.3f} by leader "
                f"{event['leader']} ({event.get('vertices', 0)} vertices ordered)"
            ]
    skip = next(
        (
            event
            for event in mine
            if event["kind"] == "anchor_skipped" and event["round"] == round_number
        ),
        None,
    )
    if skip is None:
        raise ReproError(
            f"no anchor event for round {round_number} on validator {node} "
            "(round not reached, or not an anchor round)"
        )
    leader = skip["leader"]
    at = skip["t"]
    lines = [
        f"anchor r={round_number} skipped on validator {node} at t={at:.3f}; "
        f"leader was validator {leader}"
    ]
    if skip.get("anchor_present"):
        lines.append(
            f"  the anchor vertex was in the DAG, but direct support reached only "
            f"{skip.get('direct_stake')} of the required {skip.get('threshold')} stake "
            "before a later anchor committed past it"
        )
    else:
        lines.append(
            "  the leader's anchor vertex never entered this validator's DAG "
            "before the round was sealed"
        )
        proposed = any(
            event["kind"] == "vertex_proposed"
            and event.get("node") == leader
            and event["round"] == round_number
            for event in events
        )
        if not proposed:
            lines.append(f"  validator {leader} never proposed a vertex for r={round_number}")
        parked = sum(
            1
            for event in mine
            if event["kind"] == "vertex_parked"
            and event.get("source") == leader
            and event["round"] == round_number
        )
        if parked:
            lines.append(
                f"  it was parked {parked}x on validator {node} waiting for missing parents"
            )
    if _crashed_at(events, leader, at):
        lines.append(f"  validator {leader} was crashed at t={at:.3f}")
    for window in _behavior_windows_at(events, leader, at):
        lines.append(
            f"  validator {leader} was running policy "
            f"{window.get('policy', '?')} since t={window['t']:.3f}"
            + (" (coordinated)" if window.get("coordinated") else "")
        )
    partition = _partition_at(events, at)
    if partition is not None:
        lines.append(
            f"  a network partition was active (groups={partition.get('groups')})"
        )
    dropped = [
        event
        for event in events
        if event["kind"] == "message_dropped"
        and event.get("sender") == leader
        and event["t"] <= at
    ]
    if dropped:
        # Break the count down by drop reason, and name the loss windows
        # involved — "14 dropped" alone says nothing about whether a
        # partition, a crash, or a loss window ate the leader's traffic.
        reasons: Dict[str, int] = {}
        windows = set()
        for event in dropped:
            reason = event.get("reason", "?")
            reasons[reason] = reasons.get(reason, 0) + 1
            window = event.get("window")
            if window is not None:
                windows.add(window)
        breakdown = ", ".join(
            f"{count} {reason}" for reason, count in sorted(reasons.items())
        )
        lines.append(
            f"  the transport dropped {len(dropped)} message(s) sent by "
            f"validator {leader} ({breakdown})"
        )
        if windows:
            lines.append(
                "  loss window(s) involved: "
                + ", ".join(str(window) for window in sorted(windows))
            )
        anchor_drops = [
            event
            for event in dropped
            if event.get("round") == round_number and event.get("origin") == leader
        ]
        if anchor_drops:
            lines.append(
                f"  {len(anchor_drops)} of them carried the leader's r={round_number} "
                "broadcast itself (types: "
                + ", ".join(
                    sorted({event.get("type", "?") for event in anchor_drops})
                )
                + ")"
            )
    return lines


def explain_demotion(
    events: Sequence[Event],
    validator: int,
    observer: Optional[int] = None,
) -> List[str]:
    """What evidence demoted ``validator``?"""
    node = observer_node(events) if observer is None else observer
    changes = [
        event
        for event in events
        if event["kind"] == "schedule_change"
        and event.get("node") == node
        and validator in event.get("demoted", ())
    ]
    if not changes:
        raise ReproError(
            f"validator {validator} was never demoted in this trace "
            f"(observer: validator {node})"
        )
    lines: List[str] = []
    for change in changes:
        scores = change.get("scores", {})
        # JSON round-trips dict keys to strings; accept either form.
        own = scores.get(str(validator), scores.get(validator))
        best = max(scores.values()) if scores else None
        lines.append(
            f"validator {validator} demoted at epoch {change['epoch']} "
            f"(triggered by r={change['triggered_by_round']}, t={change['t']:.3f}, "
            f"rule={change.get('scoring', '?')})"
        )
        if own is not None and best is not None:
            missing = best - own
            lines.append(
                f"  scored {own} vs committee best {best} — {missing} missing "
                "score units (votes, under vote-counting rules) this epoch"
            )
        skips = sum(
            1
            for event in events
            if event["kind"] == "anchor_skipped"
            and event.get("node") == node
            and event.get("leader") == validator
            and event["t"] <= change["t"]
        )
        if skips:
            lines.append(f"  {skips} anchor round(s) led by {validator} were skipped before this")
        withheld = sum(
            1
            for event in events
            if event["kind"] == "adversary_ack_withheld"
            and event.get("node") == validator
            and event["t"] <= change["t"]
        )
        if withheld:
            lines.append(f"  validator {validator} withheld {withheld} ack(s) before this")
        for window in _behavior_windows_at(events, validator, change["t"]):
            lines.append(
                f"  behavior window open since t={window['t']:.3f}: "
                f"{window.get('policy', '?')}"
                + (" (coordinated)" if window.get("coordinated") else "")
            )
    return lines


def summarize_kinds(events: Sequence[Event]) -> List[str]:
    """Sorted ``kind: count`` summary lines for a trace."""
    counts: Dict[str, int] = {}
    for event in events:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    width = max(len(kind) for kind in counts)
    return [f"  {kind.ljust(width)}  {counts[kind]}" for kind in sorted(counts)]
