"""Wire messages of the reliable broadcast layer.

The message classes are plain (non-frozen) dataclasses: tens of
thousands are created per simulated second and the frozen-dataclass
``object.__setattr__`` per field dominated their construction cost.
Protocol code treats them as immutable by convention (one instance fans
out to every recipient).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Tuple

from repro.crypto.hashing import Digest
from repro.types import Round, ValidatorId


@dataclasses.dataclass(unsafe_hash=True)
class BroadcastMessage:
    """Base class for broadcast-layer messages (used for dispatch)."""

    origin: ValidatorId
    round: Round
    digest: Digest


@dataclasses.dataclass(unsafe_hash=True)
class ProposeMessage(BroadcastMessage):
    """The original payload sent by the broadcaster (certified protocol)."""

    # det: waive[DET005] the broadcast layer is payload-generic; every
    # production payload is a Vertex, which defines canonical_fields().
    payload: Any = None


@dataclasses.dataclass(unsafe_hash=True)
class AckMessage(BroadcastMessage):
    """A signed acknowledgement of a proposal, sent back to the broadcaster."""

    voter: ValidatorId = -1


@dataclasses.dataclass(unsafe_hash=True)
class CertificateMessage(BroadcastMessage):
    """A 2f+1 quorum of acknowledgements; carries the payload for delivery."""

    # det: waive[DET005] payload-generic (see ProposeMessage.payload).
    payload: Any = None
    signers: Tuple[ValidatorId, ...] = ()


@dataclasses.dataclass(unsafe_hash=True)
class CertificateBatch(BroadcastMessage):
    """All certificates a validator emits for a round, in one envelope.

    The certified protocol fans every certificate out to every peer; at
    committee size ``n`` that is ``O(n^2)`` transport sends per round.
    Batching coalesces the certificates one validator emits for a round
    into a single send per peer; the receiver splits the envelope,
    deduplicates against already-delivered ``(origin, round)`` pairs, and
    verifies the remainder in one aggregate pass (see
    :meth:`~repro.rbc.certified.CertifiedBroadcast._handle_certificate_batch`).

    ``origin``/``round``/``digest`` describe the *emitter* and the round
    the batch belongs to; the certificates inside carry their own origins
    (a batch may relay certificates the emitter collected, e.g. on the
    recovery path), rounds, and quorum signer tuples, so splitting a
    batch loses no verification information.
    """

    certificates: Tuple["CertificateMessage", ...] = ()


@dataclasses.dataclass(unsafe_hash=True)
class PiggybackedPropose(ProposeMessage):
    """A proposal envelope that relays recently collected certificates.

    The loss-recovery piggyback (``NodeConfig.certificate_piggyback``)
    rides the propose fan-out: alongside its own payload, a validator
    attaches the certificates it collected recently that the recipient
    has not provably seen.  A recipient stashes the relayed certificates
    in a side table and only consults them when its synchronizer would
    otherwise issue a fetch round-trip, so loss-free runs remain
    byte-identical to plain-propose runs while a certificate lost to a
    loss window heals passively on the next fan-out.

    ``origin``/``round``/``digest``/``payload`` describe the proposal
    exactly as in :class:`ProposeMessage`; the relayed certificates carry
    their own origins, rounds, and quorum signer tuples and are verified
    independently before use (a hostile relay cannot forge one).
    """

    certificates: Tuple["CertificateMessage", ...] = ()


@dataclasses.dataclass(unsafe_hash=True)
class EchoMessage(BroadcastMessage):
    """Bracha echo: relays the payload to every party."""

    # det: waive[DET005] payload-generic (see ProposeMessage.payload).
    payload: Any = None


@dataclasses.dataclass(unsafe_hash=True)
class ReadyMessage(BroadcastMessage):
    """Bracha ready: vouches that delivery of the digest is imminent."""
