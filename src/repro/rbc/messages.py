"""Wire messages of the reliable broadcast layer."""

from __future__ import annotations

import dataclasses
from typing import Any, Tuple

from repro.crypto.hashing import Digest
from repro.types import Round, ValidatorId


@dataclasses.dataclass(frozen=True)
class BroadcastMessage:
    """Base class for broadcast-layer messages (used for dispatch)."""

    origin: ValidatorId
    round: Round
    digest: Digest


@dataclasses.dataclass(frozen=True)
class ProposeMessage(BroadcastMessage):
    """The original payload sent by the broadcaster (certified protocol)."""

    payload: Any = None


@dataclasses.dataclass(frozen=True)
class AckMessage(BroadcastMessage):
    """A signed acknowledgement of a proposal, sent back to the broadcaster."""

    voter: ValidatorId = -1


@dataclasses.dataclass(frozen=True)
class CertificateMessage(BroadcastMessage):
    """A 2f+1 quorum of acknowledgements; carries the payload for delivery."""

    payload: Any = None
    signers: Tuple[ValidatorId, ...] = ()


@dataclasses.dataclass(frozen=True)
class EchoMessage(BroadcastMessage):
    """Bracha echo: relays the payload to every party."""

    payload: Any = None


@dataclasses.dataclass(frozen=True)
class ReadyMessage(BroadcastMessage):
    """Bracha ready: vouches that delivery of the digest is imminent."""
