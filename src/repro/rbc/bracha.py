"""Bracha reliable broadcast.

The textbook echo/ready protocol satisfying Definition 1 even when the
broadcaster is Byzantine:

1. The broadcaster sends the payload to everyone.
2. On first receipt of a payload for (origin, round), a validator echoes
   it to everyone.
3. On receiving echoes covering a 2f+1 stake quorum for one digest (or
   readies covering f+1), a validator sends a ready message.
4. On receiving readies covering a 2f+1 stake quorum, it delivers.

This implementation exists primarily so the test suite can check the
Agreement / Integrity / Validity properties against an adversarial
broadcaster; the large-scale simulations use the cheaper
:class:`~repro.rbc.certified.CertifiedBroadcast`.
"""

from __future__ import annotations

from typing import Any, Dict, Set, Tuple

from repro.committee import Committee
from repro.crypto.hashing import digest_of
from repro.network.transport import Network
from repro.rbc.base import BroadcastProtocol, DeliveryCallback
from repro.rbc.messages import EchoMessage, ProposeMessage, ReadyMessage
from repro.types import Round, ValidatorId

_Key = Tuple[ValidatorId, Round]


class BrachaBroadcast(BroadcastProtocol):
    """The echo/ready reliable broadcast protocol."""

    def __init__(
        self,
        node_id: ValidatorId,
        committee: Committee,
        network: Network,
        on_deliver: DeliveryCallback,
    ) -> None:
        super().__init__(node_id, committee, network, on_deliver)
        self._echoed: Set[_Key] = set()
        self._readied: Set[_Key] = set()
        # (origin, round) -> digest -> set of echoers / readiers.
        self._echoes: Dict[_Key, Dict[bytes, Set[ValidatorId]]] = {}
        self._readies: Dict[_Key, Dict[bytes, Set[ValidatorId]]] = {}
        # Payloads seen for each (origin, round, digest).
        self._payloads: Dict[Tuple[ValidatorId, Round, bytes], Any] = {}

    # -- broadcasting ------------------------------------------------------------

    def broadcast(self, payload: Any, round_number: Round) -> None:
        self._fanout(self.make_propose(payload, round_number), round_number)

    def make_propose(self, payload: Any, round_number: Round) -> ProposeMessage:
        return ProposeMessage(
            origin=self.node_id,
            round=round_number,
            digest=self._digest(self.node_id, round_number, payload),
            payload=payload,
        )

    # -- message handling ------------------------------------------------------------

    def handle_message(self, sender: ValidatorId, message: Any) -> bool:
        if isinstance(message, ProposeMessage):
            self._handle_propose(sender, message)
            return True
        if isinstance(message, EchoMessage):
            self._handle_echo(sender, message)
            return True
        if isinstance(message, ReadyMessage):
            self._handle_ready(sender, message)
            return True
        return False

    def _handle_propose(self, sender: ValidatorId, message: ProposeMessage) -> None:
        if sender != message.origin:
            return
        self._record_payload(message.origin, message.round, message.digest, message.payload)
        if not self._participates(message.origin, message.round):
            # Behavior policy: sit the echo phase out for this origin (the
            # payload stays recorded so delivery via honest echoes works).
            return
        self._send_echo(message)

    def _send_echo(self, message: ProposeMessage) -> None:
        key = (message.origin, message.round)
        if key in self._echoed:
            return
        self._echoed.add(key)
        echo = EchoMessage(
            origin=message.origin,
            round=message.round,
            digest=message.digest,
            payload=message.payload,
        )
        self._fanout(echo, message.round)

    def _handle_echo(self, sender: ValidatorId, message: EchoMessage) -> None:
        key = (message.origin, message.round)
        self._record_payload(message.origin, message.round, message.digest, message.payload)
        voters = self._echoes.setdefault(key, {}).setdefault(message.digest, set())
        voters.add(sender)
        if self.committee.has_quorum(voters):
            self._send_ready(message.origin, message.round, message.digest)

    def _handle_ready(self, sender: ValidatorId, message: ReadyMessage) -> None:
        key = (message.origin, message.round)
        voters = self._readies.setdefault(key, {}).setdefault(message.digest, set())
        voters.add(sender)
        if self.committee.has_validity(voters):
            # Ready amplification: f+1 readies prove at least one honest
            # validator will deliver, so it is safe to join.
            self._send_ready(message.origin, message.round, message.digest)
        if self.committee.has_quorum(voters):
            self._maybe_deliver(message.origin, message.round, message.digest)

    def _send_ready(self, origin: ValidatorId, round_number: Round, digest: bytes) -> None:
        key = (origin, round_number)
        if key in self._readied:
            return
        self._readied.add(key)
        ready = ReadyMessage(origin=origin, round=round_number, digest=digest)
        self._fanout(ready, round_number)

    # -- helpers ---------------------------------------------------------------------

    def _record_payload(
        self, origin: ValidatorId, round_number: Round, digest: bytes, payload: Any
    ) -> None:
        self._payloads.setdefault((origin, round_number, digest), payload)
        # Delivery may have been blocked only on the payload (a quorum of
        # readies can arrive before any echo carrying the content).
        self._maybe_deliver(origin, round_number, digest)

    def _maybe_deliver(self, origin: ValidatorId, round_number: Round, digest: bytes) -> None:
        """Deliver once both a ready quorum and the payload are available."""
        voters = self._readies.get((origin, round_number), {}).get(digest, set())
        if not self.committee.has_quorum(voters):
            return
        key = (origin, round_number, digest)
        if key not in self._payloads:
            return
        self._deliver(self._payloads[key], round_number, origin)

    @staticmethod
    def _digest(origin: ValidatorId, round_number: Round, payload: Any) -> bytes:
        content = getattr(payload, "digest", None)
        if content is None:
            try:
                content = digest_of(payload)
            except TypeError:
                content = repr(payload)
        return digest_of("bracha-broadcast", origin, round_number, content)
