"""Narwhal-style certified broadcast.

Protocol (for one broadcast by validator ``p`` at round ``r``):

1. ``p`` sends a :class:`ProposeMessage` carrying the payload to every
   validator.
2. Each validator acknowledges the *first* proposal it sees from ``p`` for
   round ``r`` with an :class:`AckMessage` (this is what prevents an
   equivocating broadcaster from certifying two different payloads).
3. When ``p`` has collected acknowledgements covering a 2f+1 stake quorum,
   it assembles a :class:`CertificateMessage` and sends it to everyone —
   coalesced, in the default configuration, into one
   :class:`CertificateBatch` per round so large committees pay one
   transport send per peer for all certificates the validator emits for
   that round.
4. A validator delivers the payload when it receives a valid certificate
   (directly, or by splitting a batch).

The quorum intersection argument gives non-equivocation: two conflicting
certificates would require two quorums of acknowledgements whose
intersection contains an honest validator that acknowledged both, which an
honest validator never does.  Agreement across honest parties is completed
by the node-level synchronizer (parents referenced by a delivered vertex
are fetched from the vertex's source), mirroring Narwhal's certificate
fetcher.

Large-committee fast path
-------------------------

Three per-message costs dominated profiles at committee sizes of 25+ and
are engineered away here:

* **Acknowledgement accounting** used to rebuild a voter set and re-sum
  its stake on every ack (``O(n)`` per ack, ``O(n^2)`` per round); the
  stake of the voter set is now accumulated incrementally, making each
  ack O(1).
* **Certificate verification** recomputed the expected broadcast digest
  (an SHA-256 over a canonical preimage) at every one of the ``n``
  recipients of a certificate.  The digest is a pure function of
  ``(origin, round, payload fingerprint)``, so it is memoized
  process-wide (:data:`~repro.crypto.hashing.BROADCAST_DIGEST_MEMO`) and
  computed once per broadcast; batches verify their certificates in one
  pass over the shared memo.  The 2f+1 signer check is likewise memoized
  per signer tuple (one certificate object fans out to all peers).
* **Batched delivery** (:class:`CertificateBatch`) keeps the transport
  send count at one per peer per round regardless of how many
  certificates a validator emits; receivers split, deduplicate against
  already-delivered ``(origin, round)`` pairs, and hand the payloads to
  the DAG in batch order (parking/promotion of out-of-order vertices is
  exercised by the property suite).  Batching only changes the envelope,
  never the number of sends or the RNG draw sequence, so batched and
  unbatched runs are byte-identical.

Loss recovery: certificate piggybacking
---------------------------------------

With ``piggyback_certificates`` on, each propose fan-out additionally
relays the certificates this validator collected recently that the
recipient has not *provably* seen (the peer originated it, the peer sent
it to us, or we already piggybacked it to that peer — bookkeeping is
per-peer and bounded by the shared capped-table idiom).  Receivers stash
the relayed certificates in a bounded side table without acting on them;
the table is only consulted at the exact point the node-level
synchronizer would otherwise issue a ``FetchRequest`` round-trip
(:meth:`recover_certificate`).  Loss-free runs never reach that point
(no fetches are issued at all), so piggyback-on runs are byte-identical
to piggyback-off runs by construction; under a loss window the heal
replaces the fetch timeout + round-trip, which is the recovery-latency
win the lossy-recovery bench stage quantifies.  The fan-out itself uses
:meth:`~repro.network.transport.Network.scatter`, which preserves the
RNG draw order and statistics of a plain broadcast exactly.
"""

from __future__ import annotations

from hashlib import sha256
from typing import Any, Dict, Set, Tuple

from repro.committee import Committee
from repro.crypto.hashing import BROADCAST_DIGEST_MEMO, digest_of, evict_oldest_half
from repro.errors import BroadcastError
from repro.network.transport import Network
from repro.rbc.base import BroadcastProtocol, DeliveryCallback
from repro.rbc.messages import (
    AckMessage,
    CertificateBatch,
    CertificateMessage,
    PiggybackedPropose,
    ProposeMessage,
)
from repro.types import Round, Stake, ValidatorId

# Piggyback bounds.  Only certificates from the last PIGGYBACK_DEPTH
# rounds ride a propose fan-out (older ones are the synchronizer's
# business), at most PIGGYBACK_MAX_PER_ENVELOPE per envelope; the
# relay/seen/pending tables are all capped with the shared
# oldest-half-eviction idiom so per-peer state stays bounded however
# long the run is.
PIGGYBACK_DEPTH = 2
PIGGYBACK_MAX_PER_ENVELOPE = 12
PIGGYBACK_RECENT_LIMIT = 256
PIGGYBACK_SEEN_LIMIT = 512
PIGGYBACK_PENDING_LIMIT = 256


class CertifiedBroadcast(BroadcastProtocol):
    """O(n)-message reliable dissemination with explicit certificates."""

    def __init__(
        self,
        node_id: ValidatorId,
        committee: Committee,
        network: Network,
        on_deliver: DeliveryCallback,
        batch_certificates: bool = True,
        piggyback_certificates: bool = False,
    ) -> None:
        super().__init__(node_id, committee, network, on_deliver)
        # Emit certificates as one CertificateBatch per round (the fast
        # path) or as bare CertificateMessage broadcasts (the legacy
        # wire format, kept for the batched-vs-unbatched differential
        # tests).  Both consume identical RNG/event sequences.
        self.batch_certificates = batch_certificates
        # Relay recently collected certificates on the propose fan-out
        # (loss recovery; see the module docstring).  Off by default: the
        # bookkeeping below stays empty and every path is unchanged.
        self.piggyback_certificates = piggyback_certificates
        # Certificates eligible for relaying, keyed by (origin, round) in
        # collection order (own emissions + verified deliveries).
        self._recent_certificates: Dict[Tuple[ValidatorId, Round], CertificateMessage] = {}
        # Per-peer evidence table: keys this peer has provably seen (it
        # sent us the certificate) or we already piggybacked to it.  A
        # dict-as-ordered-set so the capped-table eviction applies.
        self._peer_seen: Dict[ValidatorId, Dict[Tuple[ValidatorId, Round], None]] = {}
        # Receiver-side stash of relayed certificates, consulted only by
        # :meth:`recover_certificate` (the synchronizer's fetch trigger).
        self._pending_certificates: Dict[Tuple[ValidatorId, Round], CertificateMessage] = {}
        # Recovery statistics (surfaced by the runner's counter snapshot).
        self.certificates_piggybacked = 0
        self.certificates_healed = 0
        # Acks received for broadcasts we originated: round -> voter
        # bitmask (bit ``v`` set iff validator ``v`` acked), with the
        # voter set's stake accumulated incrementally so each ack costs
        # O(1).  The mask's ascending bit order *is* the sorted voter
        # order, so the certificate's signers tuple is read straight off
        # it — byte-identical to the old ``tuple(sorted(voter_set))``.
        self._ack_masks: Dict[Round, int] = {}
        self._ack_stake: Dict[Round, Stake] = {}
        # Payloads of our own in-flight broadcasts, keyed by round.
        self._own_payloads: Dict[Round, Tuple[Any, bytes]] = {}
        # Rounds we already certified (to send the certificate only once).
        self._certified: Set[Round] = set()
        # First proposal digest acknowledged per (origin, round).
        self._acked: Dict[Tuple[ValidatorId, Round], bytes] = {}
        self._stake_vector = committee.stake_vector
        # Class-keyed dispatch: cheaper than an isinstance chain on the
        # per-delivery path, and exact classes are the wire contract.
        self._handlers = {
            ProposeMessage: self._handle_propose,
            PiggybackedPropose: self._handle_piggybacked_propose,
            AckMessage: self._handle_ack,
            CertificateMessage: self._handle_certificate,
            CertificateBatch: self._handle_certificate_batch,
        }

    @staticmethod
    def _broadcast_digest(origin: ValidatorId, round_number: Round, payload: Any) -> bytes:
        fingerprint = _payload_digest(payload)
        key = (origin, round_number, fingerprint)
        memo = BROADCAST_DIGEST_MEMO
        digest = memo.get(key)
        if digest is None:
            # Domain-separated binding of (origin, round, payload
            # fingerprint); hashed directly rather than through the
            # general canonical serializer.  The memo is process-wide:
            # the same digest is re-derived by every recipient of a
            # certificate, and the key embeds the content fingerprint,
            # so entries are shared across validators (and experiments)
            # safely.
            raw = fingerprint if isinstance(fingerprint, bytes) else repr(fingerprint).encode()
            digest = memo.put(
                key,
                sha256(
                    b"certified-broadcast|%d|%d|%b" % (origin, round_number, raw)
                ).digest(),
            )
        return digest

    # -- broadcasting -----------------------------------------------------------

    def broadcast(self, payload: Any, round_number: Round) -> None:
        digest = self._broadcast_digest(self.node_id, round_number, payload)
        if round_number in self._own_payloads:
            raise BroadcastError(
                f"validator {self.node_id} already broadcast for round {round_number}"
            )
        self._own_payloads[round_number] = (payload, digest)
        self._ack_masks[round_number] = 0
        self._ack_stake[round_number] = 0
        message = ProposeMessage(
            origin=self.node_id,
            round=round_number,
            digest=digest,
            payload=payload,
        )
        if self.piggyback_certificates:
            self._fanout_piggybacked(message, round_number)
        else:
            self._fanout(message, round_number)

    def make_propose(self, payload: Any, round_number: Round) -> ProposeMessage:
        return ProposeMessage(
            origin=self.node_id,
            round=round_number,
            digest=self._broadcast_digest(self.node_id, round_number, payload),
            payload=payload,
        )

    def _emit_certificates(
        self, round_number: Round, certificates: Tuple[CertificateMessage, ...]
    ) -> None:
        """Fan out the certificates we emit for ``round_number``.

        The batched path coalesces them into one transport send per peer;
        the legacy path broadcasts each certificate individually.  Both
        paths issue sends in the same order, so the simulation's RNG and
        event sequences are identical — only the envelope differs.
        """
        if self._registry is not None:
            # Batch fill: certificates coalesced per emitted envelope.
            self._registry.observe("rbc.batch_fill", len(certificates))
        if self.batch_certificates:
            envelope = CertificateBatch(
                origin=self.node_id,
                round=round_number,
                digest=certificates[0].digest,
                certificates=certificates,
            )
            self._fanout(envelope, round_number)
        else:
            for certificate in certificates:
                self._fanout(certificate, round_number)

    # -- certificate piggybacking (loss recovery) ---------------------------------

    def _fanout_piggybacked(self, message: ProposeMessage, round_number: Round) -> None:
        """Propose fan-out with per-peer certificate deltas attached.

        Peers with an empty delta receive the plain proposal; behavior
        policies bypass piggybacking entirely (their fan-out plans are
        defined over the plain propose path).  The scatter call preserves
        the RNG/event/statistics sequence of a plain broadcast exactly.
        """
        policy = self.policy
        if policy is not None and not policy.transparent:
            self._fanout(message, round_number)
            return
        envelopes = []
        for peer in self.committee.validators:
            delta = self._select_piggyback(peer, round_number)
            if delta:
                self.certificates_piggybacked += len(delta)
                envelopes.append(
                    (
                        peer,
                        PiggybackedPropose(
                            origin=message.origin,
                            round=message.round,
                            digest=message.digest,
                            payload=message.payload,
                            certificates=delta,
                        ),
                    )
                )
            else:
                envelopes.append((peer, message))
        self.network.scatter(self.node_id, envelopes)

    def _select_piggyback(
        self, peer: ValidatorId, round_number: Round
    ) -> Tuple[CertificateMessage, ...]:
        """The certificate delta to relay to ``peer`` with this proposal.

        A certificate is excluded when the peer provably has it (it is
        the origin, or it sent the certificate to us) or when we already
        piggybacked it to that peer; everything selected is marked as
        sent so no certificate rides to the same peer twice.  Only the
        last :data:`PIGGYBACK_DEPTH` rounds are eligible, at most
        :data:`PIGGYBACK_MAX_PER_ENVELOPE` per envelope.
        """
        if peer == self.node_id:
            return ()
        horizon = round_number - PIGGYBACK_DEPTH
        seen = self._peer_seen.get(peer)
        selected = []
        for key, certificate in self._recent_certificates.items():
            if certificate.round < horizon or key[0] == peer:
                continue
            if seen is not None and key in seen:
                continue
            selected.append(certificate)
            if len(selected) >= PIGGYBACK_MAX_PER_ENVELOPE:
                break
        if selected:
            if seen is None:
                seen = self._peer_seen[peer] = {}
            for certificate in selected:
                evict_oldest_half(seen, PIGGYBACK_SEEN_LIMIT)
                seen[(certificate.origin, certificate.round)] = None
        return tuple(selected)

    def _record_recent(self, certificate: CertificateMessage) -> None:
        """Remember a collected certificate as a piggyback candidate."""
        key = (certificate.origin, certificate.round)
        recent = self._recent_certificates
        if key not in recent:
            evict_oldest_half(recent, PIGGYBACK_RECENT_LIMIT)
            recent[key] = certificate

    def _note_peer_has(self, peer: ValidatorId, key: Tuple[ValidatorId, Round]) -> None:
        """Record evidence that ``peer`` possesses certificate ``key``."""
        seen = self._peer_seen.get(peer)
        if seen is None:
            seen = self._peer_seen[peer] = {}
        else:
            evict_oldest_half(seen, PIGGYBACK_SEEN_LIMIT)
        seen[key] = None

    def _note_peer_edges(self, peer: ValidatorId, payload: Any) -> None:
        """A proposal's parent edges are certificates its sender holds.

        DAG vertices only reference certified parents, so a proposal from
        ``peer`` at round ``r`` proves the peer possesses the certificate
        of every edge it cites — the strongest (and cheapest) pruning
        evidence available: it retires most of a round's certificates
        from the peer's piggyback delta one round after they circulate.
        Edges are visited in sorted order so the seen-table's insertion
        (and hence eviction) order never depends on set iteration order.
        """
        edges = getattr(payload, "edges", None)
        if not edges:
            return
        for edge in sorted(edges):
            self._note_peer_has(peer, (edge.source, edge.round))

    def _handle_piggybacked_propose(
        self, sender: ValidatorId, message: PiggybackedPropose
    ) -> None:
        """Stash relayed certificates, then process the proposal itself.

        The stash is deliberately passive: nothing is verified or
        delivered here, so receiving a piggybacked envelope is
        indistinguishable from receiving the plain proposal until the
        synchronizer actually misses a certificate.  Duplicates (already
        delivered, already stashed) are ignored idempotently; hostile
        contents sit inert until :meth:`recover_certificate` verifies
        them.
        """
        if sender == message.origin and self.piggyback_certificates:
            delivered = self._delivered
            pending = self._pending_certificates
            for certificate in message.certificates:
                key = (certificate.origin, certificate.round)
                self._note_peer_has(sender, key)
                if key not in delivered and key not in pending:
                    evict_oldest_half(pending, PIGGYBACK_PENDING_LIMIT)
                    pending[key] = certificate
        self._handle_propose(sender, message)

    def recover_certificate(self, origin: ValidatorId, round_number: Round) -> bool:
        """Heal a missing ``(origin, round)`` certificate from the stash.

        Called by the node-level synchronizer immediately before it would
        issue a :class:`~repro.node.messages.FetchRequest` for the vertex.
        Returns ``True`` when the fetch is unnecessary: the certificate
        was stashed by an earlier piggybacked fan-out and verifies (it is
        delivered on the spot), or the payload was already delivered.  An
        invalid stashed certificate is discarded and the fetch proceeds.
        """
        key = (origin, round_number)
        certificate = self._pending_certificates.pop(key, None)
        if certificate is None:
            return False
        if key in self._delivered:
            return True
        if not self._verify_certificate(certificate):
            return False
        self.certificates_healed += 1
        if self._tracing:
            self._tracer.emit(
                "certificate_healed",
                node=self.node_id,
                round=round_number,
                origin=origin,
            )
        self._record_recent(certificate)
        self._deliver(certificate.payload, certificate.round, certificate.origin)
        return True

    # -- message handling ----------------------------------------------------------

    def handle_message(self, sender: ValidatorId, message: Any) -> bool:
        handler = self._handlers.get(message.__class__)
        if handler is None:
            return False
        handler(sender, message)
        return True

    def _handle_propose(self, sender: ValidatorId, message: ProposeMessage) -> None:
        if sender != message.origin:
            # Proposals are only valid coming directly from their origin.
            return
        if self.piggyback_certificates:
            self._note_peer_edges(sender, message.payload)
        if not self._participates(message.origin, message.round):
            # Behavior policy: withhold the acknowledgement entirely (and
            # record nothing, so an honest relapse could still ack).
            if self._tracing:
                self._tracer.emit(
                    "adversary_ack_withheld",
                    node=self.node_id,
                    round=message.round,
                    origin=message.origin,
                )
            return
        key = (message.origin, message.round)
        previously_acked = self._acked.get(key)
        if previously_acked is not None and previously_acked != message.digest:
            # Equivocation attempt: never acknowledge a second payload.
            return
        self._acked[key] = message.digest
        ack = AckMessage(
            origin=message.origin,
            round=message.round,
            digest=message.digest,
            voter=self.node_id,
        )
        self.network.send(self.node_id, message.origin, ack)

    def _handle_ack(self, sender: ValidatorId, message: AckMessage) -> None:
        if message.origin != self.node_id:
            return
        own = self._own_payloads.get(message.round)
        if own is None:
            return
        payload, digest = own
        if message.digest != digest or message.voter != sender:
            return
        if message.round in self._certified:
            return
        voter_bit = 1 << sender
        voters = self._ack_masks.get(message.round, 0)
        if not voters & voter_bit:
            voters |= voter_bit
            self._ack_masks[message.round] = voters
            stake = self._ack_stake.get(message.round, 0) + self.committee.stake_of(sender)
            self._ack_stake[message.round] = stake
        else:
            stake = self._ack_stake[message.round]
        if stake >= self._stake_vector.quorum:
            self._certified.add(message.round)
            if self._tracing:
                self._tracer.emit(
                    "vertex_certified",
                    node=self.node_id,
                    round=message.round,
                    signers=voters.bit_count(),
                )
            certificate = CertificateMessage(
                origin=self.node_id,
                round=message.round,
                digest=digest,
                payload=payload,
                # Ascending-bit order == sorted voter ids, so the wire
                # tuple is identical to the pre-bitmask encoding.
                signers=self._stake_vector.validators_of_mask(voters),
            )
            if self.piggyback_certificates:
                self._record_recent(certificate)
            self._emit_certificates(message.round, (certificate,))

    def _verify_certificate(self, message: CertificateMessage) -> bool:
        """One certificate's aggregate check: signer quorum + digest.

        Both halves are memoized process-wide (the signer tuple and the
        digest preimage are shared by all recipients of one fan-out), so
        a batch is verified in a single pass over cached verdicts.  The
        tuple memo's miss path converts to a bitmask once and decides via
        :meth:`~repro.committee.stake.StakeVector.mask_has_quorum`;
        calling the converter per verification instead costs O(signers)
        per certificate and measurably regressed committee-100 runs.
        """
        if not self._stake_vector.signer_tuple_has_quorum(message.signers):
            # An invalid certificate cannot trigger delivery.
            return False
        expected = self._broadcast_digest(message.origin, message.round, message.payload)
        return expected == message.digest

    def _handle_certificate(self, sender: ValidatorId, message: CertificateMessage) -> None:
        if self.piggyback_certificates:
            # The sender provably has this certificate; remember both the
            # evidence and the certificate itself as a relay candidate.
            self._note_peer_has(sender, (message.origin, message.round))
        if (message.origin, message.round) in self._delivered:
            # Duplicate delivery is a no-op either way; skip verification.
            return
        if self._verify_certificate(message):
            if self.piggyback_certificates:
                self._record_recent(message)
            self._deliver(message.payload, message.round, message.origin)

    def _handle_certificate_batch(self, sender: ValidatorId, message: CertificateBatch) -> None:
        """Split a batch: dedup, verify, and deliver in batch order.

        Delivery order within the batch is the emitter's order, so a
        receiver observes exactly the sequence an unbatched sender would
        have produced; vertices whose parents are still missing are
        parked by the DAG store and promoted when the parent arrives
        (possibly later in the same batch).
        """
        delivered = self._delivered
        piggyback = self.piggyback_certificates
        for certificate in message.certificates:
            key = (certificate.origin, certificate.round)
            if piggyback:
                self._note_peer_has(sender, key)
            if key in delivered:
                continue
            if self._verify_certificate(certificate):
                if piggyback:
                    self._record_recent(certificate)
                self._deliver(certificate.payload, certificate.round, certificate.origin)

    # -- introspection -----------------------------------------------------------------

    def ack_count(self, round_number: Round) -> int:
        return self._ack_masks.get(round_number, 0).bit_count()

    def is_certified(self, round_number: Round) -> bool:
        return round_number in self._certified


def _payload_digest(payload: Any) -> Any:
    """Best-effort content fingerprint of an arbitrary payload."""
    digest = getattr(payload, "digest", None)
    if digest is not None:
        return digest
    try:
        return digest_of(payload)
    except TypeError:
        return repr(payload)
