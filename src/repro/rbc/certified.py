"""Narwhal-style certified broadcast.

Protocol (for one broadcast by validator ``p`` at round ``r``):

1. ``p`` sends a :class:`ProposeMessage` carrying the payload to every
   validator.
2. Each validator acknowledges the *first* proposal it sees from ``p`` for
   round ``r`` with an :class:`AckMessage` (this is what prevents an
   equivocating broadcaster from certifying two different payloads).
3. When ``p`` has collected acknowledgements covering a 2f+1 stake quorum,
   it assembles a :class:`CertificateMessage` and sends it to everyone.
4. A validator delivers the payload when it receives a valid certificate.

The quorum intersection argument gives non-equivocation: two conflicting
certificates would require two quorums of acknowledgements whose
intersection contains an honest validator that acknowledged both, which an
honest validator never does.  Agreement across honest parties is completed
by the node-level synchronizer (parents referenced by a delivered vertex
are fetched from the vertex's source), mirroring Narwhal's certificate
fetcher.
"""

from __future__ import annotations

from hashlib import sha256
from typing import Any, Dict, Set, Tuple

from repro.committee import Committee
from repro.crypto.hashing import digest_of
from repro.errors import BroadcastError
from repro.network.transport import Network
from repro.rbc.base import BroadcastProtocol, DeliveryCallback
from repro.rbc.messages import AckMessage, CertificateMessage, ProposeMessage
from repro.types import Round, ValidatorId


class CertifiedBroadcast(BroadcastProtocol):
    """O(n)-message reliable dissemination with explicit certificates."""

    def __init__(
        self,
        node_id: ValidatorId,
        committee: Committee,
        network: Network,
        on_deliver: DeliveryCallback,
    ) -> None:
        super().__init__(node_id, committee, network, on_deliver)
        # Acks received for broadcasts we originated: (round) -> voters.
        self._acks: Dict[Round, Set[ValidatorId]] = {}
        # Payloads of our own in-flight broadcasts, keyed by round.
        self._own_payloads: Dict[Round, Tuple[Any, bytes]] = {}
        # Rounds we already certified (to send the certificate only once).
        self._certified: Set[Round] = set()
        # First proposal digest acknowledged per (origin, round).
        self._acked: Dict[Tuple[ValidatorId, Round], bytes] = {}
        # Memoized expected broadcast digests, keyed by
        # (origin, round, payload fingerprint): a validator recomputes the
        # same digest for every certificate (and re-broadcast) it receives
        # for one (origin, round).  Old rounds are pruned once the cache
        # outgrows a window, keeping memory bounded on long runs.
        self._digest_cache: Dict[Tuple[ValidatorId, Round, Any], bytes] = {}

    # Cache sizing: prune oldest rounds down to half this when exceeded.
    _DIGEST_CACHE_LIMIT = 4096

    def _broadcast_digest(self, origin: ValidatorId, round_number: Round, payload: Any) -> bytes:
        fingerprint = _payload_digest(payload)
        key = (origin, round_number, fingerprint)
        digest = self._digest_cache.get(key)
        if digest is None:
            if len(self._digest_cache) >= self._DIGEST_CACHE_LIMIT:
                # Evict oldest rounds down to half the budget.  Size-driven
                # (not a fixed round cutoff) so pruning always makes
                # progress even when the live window of a large committee
                # exceeds the limit; evicted live entries just recompute.
                by_age = sorted(self._digest_cache, key=lambda entry: entry[1])
                for stale in by_age[: len(by_age) - self._DIGEST_CACHE_LIMIT // 2]:
                    del self._digest_cache[stale]
            # Domain-separated binding of (origin, round, payload
            # fingerprint); hashed directly rather than through the
            # general canonical serializer — this runs once per
            # (origin, round) per validator.
            raw = fingerprint if isinstance(fingerprint, bytes) else repr(fingerprint).encode()
            digest = sha256(
                b"certified-broadcast|%d|%d|%b" % (origin, round_number, raw)
            ).digest()
            self._digest_cache[key] = digest
        return digest

    # -- broadcasting -----------------------------------------------------------

    def broadcast(self, payload: Any, round_number: Round) -> None:
        digest = self._broadcast_digest(self.node_id, round_number, payload)
        if round_number in self._own_payloads:
            raise BroadcastError(
                f"validator {self.node_id} already broadcast for round {round_number}"
            )
        self._own_payloads[round_number] = (payload, digest)
        self._acks[round_number] = set()
        message = ProposeMessage(
            origin=self.node_id,
            round=round_number,
            digest=digest,
            payload=payload,
        )
        self.network.broadcast(self.node_id, message, include_self=True)

    # -- message handling ----------------------------------------------------------

    def handle_message(self, sender: ValidatorId, message: Any) -> bool:
        if isinstance(message, ProposeMessage):
            self._handle_propose(sender, message)
            return True
        if isinstance(message, AckMessage):
            self._handle_ack(sender, message)
            return True
        if isinstance(message, CertificateMessage):
            self._handle_certificate(sender, message)
            return True
        return False

    def _handle_propose(self, sender: ValidatorId, message: ProposeMessage) -> None:
        if sender != message.origin:
            # Proposals are only valid coming directly from their origin.
            return
        key = (message.origin, message.round)
        previously_acked = self._acked.get(key)
        if previously_acked is not None and previously_acked != message.digest:
            # Equivocation attempt: never acknowledge a second payload.
            return
        self._acked[key] = message.digest
        ack = AckMessage(
            origin=message.origin,
            round=message.round,
            digest=message.digest,
            voter=self.node_id,
        )
        self.network.send(self.node_id, message.origin, ack)

    def _handle_ack(self, sender: ValidatorId, message: AckMessage) -> None:
        if message.origin != self.node_id:
            return
        own = self._own_payloads.get(message.round)
        if own is None:
            return
        payload, digest = own
        if message.digest != digest or message.voter != sender:
            return
        if message.round in self._certified:
            return
        voters = self._acks.setdefault(message.round, set())
        voters.add(sender)
        if self.committee.has_quorum(voters):
            self._certified.add(message.round)
            certificate = CertificateMessage(
                origin=self.node_id,
                round=message.round,
                digest=digest,
                payload=payload,
                signers=tuple(sorted(voters)),
            )
            self.network.broadcast(self.node_id, certificate, include_self=True)

    def _handle_certificate(self, sender: ValidatorId, message: CertificateMessage) -> None:
        if not self.committee.has_quorum(message.signers):
            # An invalid certificate cannot trigger delivery.
            return
        expected = self._broadcast_digest(message.origin, message.round, message.payload)
        if expected != message.digest:
            return
        self._deliver(message.payload, message.round, message.origin)

    # -- introspection -----------------------------------------------------------------

    def ack_count(self, round_number: Round) -> int:
        return len(self._acks.get(round_number, set()))

    def is_certified(self, round_number: Round) -> bool:
        return round_number in self._certified


def _payload_digest(payload: Any) -> Any:
    """Best-effort content fingerprint of an arbitrary payload."""
    digest = getattr(payload, "digest", None)
    if digest is not None:
        return digest
    try:
        return digest_of(payload)
    except TypeError:
        return repr(payload)
