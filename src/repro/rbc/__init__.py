"""Reliable broadcast (Definition 1 of the paper).

Two interchangeable implementations are provided behind the same
interface:

* :class:`BrachaBroadcast` — the classic echo/ready protocol.  It uses
  O(n^2) messages per broadcast and is used by correctness tests that
  exercise Definition 1 directly.
* :class:`CertifiedBroadcast` — the Narwhal-style dissemination used by
  the production system: the proposer sends the payload to everyone,
  collects a 2f+1 quorum of signed acknowledgements, and distributes the
  resulting certificate.  It uses O(n) messages per broadcast, which keeps
  large-committee simulations tractable, and provides the same interface
  guarantees when combined with the node-level synchronizer (vertices
  referenced by later vertices are fetched on demand).
"""

from repro.rbc.messages import (
    AckMessage,
    BroadcastMessage,
    CertificateMessage,
    EchoMessage,
    ProposeMessage,
    ReadyMessage,
)
from repro.rbc.base import BroadcastProtocol, Delivery
from repro.rbc.bracha import BrachaBroadcast
from repro.rbc.certified import CertifiedBroadcast

__all__ = [
    "BroadcastProtocol",
    "Delivery",
    "BrachaBroadcast",
    "CertifiedBroadcast",
    "BroadcastMessage",
    "ProposeMessage",
    "AckMessage",
    "CertificateMessage",
    "EchoMessage",
    "ReadyMessage",
]
