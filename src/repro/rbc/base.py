"""Common interface of reliable broadcast implementations."""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Optional

from repro.committee import Committee
from repro.network.transport import Network
from repro.obs.trace import NULL_TRACER, Tracer
from repro.rbc.messages import BroadcastMessage, ProposeMessage
from repro.types import Round, SimTime, ValidatorId


class Delivery:
    """A delivered broadcast: ``r_deliver(m, r, i)`` in Definition 1.

    A plain slotted class rather than a frozen dataclass: one instance is
    materialized per delivered vertex, and the frozen-dataclass
    ``object.__setattr__`` per field was measurable on that path.
    """

    __slots__ = ("payload", "round", "origin", "delivered_at")

    def __init__(
        self,
        payload: Any,
        round: Round,
        origin: ValidatorId,
        delivered_at: SimTime,
    ) -> None:
        self.payload = payload
        self.round = round
        self.origin = origin
        self.delivered_at = delivered_at

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Delivery):
            return NotImplemented
        return (
            self.payload == other.payload
            and self.round == other.round
            and self.origin == other.origin
            and self.delivered_at == other.delivered_at
        )

    def __hash__(self) -> int:
        # Defining __eq__ would otherwise null __hash__; the frozen
        # dataclass this replaced was hashable, so keep that contract.
        return hash((self.payload, self.round, self.origin, self.delivered_at))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Delivery(payload={self.payload!r}, round={self.round}, "
            f"origin={self.origin}, delivered_at={self.delivered_at})"
        )


# Callback invoked exactly once per (origin, round) on delivery.
DeliveryCallback = Callable[[Delivery], None]


class BroadcastProtocol:
    """Base class shared by the Bracha and certified implementations."""

    # Observability (repro.obs): the registry is only non-None when a
    # run asks for detailed instrumentation (batch-fill histograms).
    _tracer: Tracer = NULL_TRACER
    _tracing = False
    _registry: Optional[Any] = None

    def __init__(
        self,
        node_id: ValidatorId,
        committee: Committee,
        network: Network,
        on_deliver: DeliveryCallback,
    ) -> None:
        self.node_id = node_id
        self.committee = committee
        self.network = network
        self.on_deliver = on_deliver
        # Behavior policy governing this node's fan-out and participation
        # decisions (see :mod:`repro.behavior`).  ``None`` and transparent
        # policies take the unconditional fast path below, so standalone
        # protocol use and honest runs stay on the pre-policy instruction
        # sequence.  The owning node keeps this in sync via
        # ``ValidatorNode.set_behavior``.
        self.policy: Optional[Any] = None
        # Delivered (origin, round) pairs: enforces the Integrity property
        # (at most one delivery per origin and round).
        self._delivered: set = set()

    def install_observability(self, tracer: Tracer, registry: Optional[Any]) -> None:
        """Attach a tracer (and optionally a counter registry)."""
        self._tracer = tracer
        self._tracing = tracer.enabled
        self._registry = registry

    # -- API ------------------------------------------------------------------

    def broadcast(self, payload: Any, round_number: Round) -> None:
        """``r_bcast(m, r)``: disseminate ``payload`` for ``round_number``."""
        raise NotImplementedError

    def handle_message(self, sender: ValidatorId, message: Any) -> bool:
        """Process a network message.

        Returns ``True`` when the message belonged to the broadcast layer
        (and was consumed), ``False`` otherwise so the caller can dispatch
        it elsewhere.
        """
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------

    def owns(self, message: Any) -> bool:
        return isinstance(message, BroadcastMessage)

    def make_propose(self, payload: Any, round_number: Round) -> ProposeMessage:
        """Build a well-formed proposal for ``payload`` (protocol digest).

        Used by the fan-out enactment below to turn a policy's payload
        substitution (equivocation) into a wire message whose digest the
        receiving validators will verify successfully.
        """
        raise NotImplementedError

    def _fanout(self, message: Any, round_number: Round) -> None:
        """Fan an own message out to the committee, policy permitting.

        The honest path is the first branch: without an active policy the
        call collapses to the transport broadcast this method replaced,
        preserving RNG draw order and event sequence exactly.  An active
        policy may return a per-recipient plan; recipients omitted from
        the plan are dropped, directives may substitute the payload
        (proposals only) or delay the send by extra virtual time.
        """
        policy = self.policy
        if policy is None or policy.transparent:
            self.network.broadcast(self.node_id, message, include_self=True)
            return
        plan = policy.plan_fanout(message, round_number, self.committee.validators)
        if plan is None:
            self.network.broadcast(self.node_id, message, include_self=True)
            return
        network = self.network
        simulator = network.simulator
        substitutable = isinstance(message, ProposeMessage)
        for directive in plan:
            wire = message
            if directive.payload is not None and substitutable:
                wire = self.make_propose(directive.payload, round_number)
            if directive.delay > 0.0:
                # Crash/partition/loss state is evaluated when the send
                # fires, exactly as for an honest message sent late.
                simulator.schedule(
                    directive.delay,
                    partial(network.send, self.node_id, directive.recipient, wire),
                )
            else:
                network.send(self.node_id, directive.recipient, wire)

    def _participates(self, origin: ValidatorId, round_number: Round) -> bool:
        """Ack/echo participation decision for ``origin``'s proposal."""
        policy = self.policy
        if policy is None or policy.transparent:
            return True
        return policy.should_ack(origin, round_number)

    def _deliver(self, payload: Any, round_number: Round, origin: ValidatorId) -> None:
        key = (origin, round_number)
        if key in self._delivered:
            return
        self._delivered.add(key)
        if self._tracing:
            self._tracer.emit(
                "payload_delivered",
                node=self.node_id,
                round=round_number,
                origin=origin,
            )
        self.on_deliver(
            Delivery(
                payload=payload,
                round=round_number,
                origin=origin,
                delivered_at=self._now(),
            )
        )

    def has_delivered(self, origin: ValidatorId, round_number: Round) -> bool:
        return (origin, round_number) in self._delivered

    def _now(self) -> SimTime:
        return self.network.simulator.now
