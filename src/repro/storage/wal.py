"""A write-ahead log for crash-recovery testing.

Every state mutation a validator wants to survive a crash is appended to
the log before being applied.  On recovery the log is replayed in order.
The log also exposes a ``truncate`` operation used after checkpoints
(mirroring how the production system garbage-collects old rounds).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator, List, Tuple


@dataclasses.dataclass(frozen=True)
class WalEntry:
    """One appended record: a tag naming the mutation plus its payload."""

    sequence: int
    tag: str
    payload: Any


class WriteAheadLog:
    """An append-only, replayable log of mutations."""

    def __init__(self) -> None:
        self._entries: List[WalEntry] = []
        self._next_sequence = 0

    def append(self, tag: str, payload: Any) -> WalEntry:
        """Append a record and return it."""
        entry = WalEntry(sequence=self._next_sequence, tag=tag, payload=payload)
        self._next_sequence += 1
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[WalEntry]:
        return iter(list(self._entries))

    def replay(self) -> Tuple[WalEntry, ...]:
        """Return all entries in append order."""
        return tuple(self._entries)

    def truncate_before(self, sequence: int) -> int:
        """Drop entries with ``sequence`` strictly below the given value.

        Returns the number of dropped entries.  Sequence numbers are never
        reused, so replay order is unaffected.
        """
        kept = [entry for entry in self._entries if entry.sequence >= sequence]
        dropped = len(self._entries) - len(kept)
        self._entries = kept
        return dropped

    @property
    def last_sequence(self) -> int:
        """Sequence number of the most recent entry, or -1 when empty."""
        if not self._entries:
            return -1
        return self._entries[-1].sequence
