"""An in-memory persistent key-value store (RocksDB substitute).

The store is organised in column families like RocksDB.  It lives outside
the validator object so that crashing a validator (dropping its in-memory
protocol state) does not lose the persisted data; recovery re-opens the
same store instance and replays from it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import StorageError


class ColumnFamily:
    """A named keyspace inside a :class:`PersistentStore`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._data: Dict[Any, Any] = {}
        self.writes = 0
        self.reads = 0

    def put(self, key: Any, value: Any) -> None:
        self.writes += 1
        self._data[key] = value

    def get(self, key: Any, default: Any = None) -> Any:
        self.reads += 1
        return self._data.get(key, default)

    def contains(self, key: Any) -> bool:
        return key in self._data

    def delete(self, key: Any) -> None:
        self._data.pop(key, None)

    def keys(self) -> List[Any]:
        return list(self._data.keys())

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(list(self._data.items()))

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


class PersistentStore:
    """A collection of column families, one store per validator."""

    # Column families used by the validator node.
    CF_VERTICES = "vertices"
    CF_CONSENSUS = "consensus"
    CF_SCHEDULE = "schedule"
    CF_TRANSACTIONS = "transactions"

    DEFAULT_FAMILIES = (CF_VERTICES, CF_CONSENSUS, CF_SCHEDULE, CF_TRANSACTIONS)

    def __init__(self, owner: Optional[int] = None) -> None:
        self.owner = owner
        self._families: Dict[str, ColumnFamily] = {}
        for name in self.DEFAULT_FAMILIES:
            self._families[name] = ColumnFamily(name)

    def family(self, name: str) -> ColumnFamily:
        """Return (creating if needed) the column family called ``name``."""
        if name not in self._families:
            self._families[name] = ColumnFamily(name)
        return self._families[name]

    def open_family(self, name: str) -> ColumnFamily:
        """Return an existing column family or raise :class:`StorageError`."""
        family = self._families.get(name)
        if family is None:
            raise StorageError(f"column family {name!r} does not exist")
        return family

    @property
    def families(self) -> Tuple[str, ...]:
        return tuple(self._families)

    def total_writes(self) -> int:
        return sum(family.writes for family in self._families.values())

    def total_keys(self) -> int:
        return sum(len(family) for family in self._families.values())

    def wipe(self) -> None:
        """Erase all persisted data (models losing the disk)."""
        for family in self._families.values():
            family.clear()
