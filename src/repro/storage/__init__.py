"""Storage substrate: an in-memory persistent store with a write-ahead log.

The production implementation persists DAG vertices and consensus state in
RocksDB so a validator can crash and recover without losing safety.  The
simulator replaces RocksDB with an in-memory key-value store whose
contents survive a simulated crash (the store object outlives the crashed
validator object) plus a write-ahead log that records every mutation, so
recovery code can replay state deterministically.
"""

from repro.storage.store import ColumnFamily, PersistentStore
from repro.storage.wal import WalEntry, WriteAheadLog

__all__ = ["PersistentStore", "ColumnFamily", "WriteAheadLog", "WalEntry"]
