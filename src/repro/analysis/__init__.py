"""Determinism auditor: AST-based static analysis of the reproduction.

Every result this repository reports rests on one invariant: the
ordering digest of an honest run is a pure function of the scenario
spec.  The differential test suite enforces that *dynamically* for a
finite set of configurations; this package enforces it *statically*,
so a PR that drags nondeterminism into the commit path fails lint
before any test runs.

The package mirrors the layering of the rest of the library:

``rules/``
    One module per determinism rule (DET001..DET005), registered in
    ``ANALYSIS_RULE_REGISTRY`` exactly like scoring rules register in
    ``SCORING_RULE_REGISTRY``.
``purity.py``
    The digest purity map: an import/call-graph closure rooted at the
    commit path, with a checked-in baseline that CI diffs.
``engine.py``
    Orchestration: load sources, run rules, apply waivers, build the
    purity map, compare the baseline.
``cli.py`` / ``__main__.py``
    The ``python -m repro.analysis`` entry point
    (``check`` / ``explain RULE`` / ``purity-map``).

Use :func:`repro.analysis.engine.analyze` programmatically, or the CLI
from a shell.  See the README "Static analysis" runbook.
"""

from repro.analysis.engine import AnalysisReport, analyze
from repro.analysis.config import AnalyzerConfig, repo_config
from repro.analysis.rules import (
    ANALYSIS_RULE_REGISTRY,
    analysis_rule_names,
    make_analysis_rule,
    register_analysis_rule,
)

__all__ = [
    "ANALYSIS_RULE_REGISTRY",
    "AnalysisReport",
    "AnalyzerConfig",
    "analysis_rule_names",
    "analyze",
    "make_analysis_rule",
    "register_analysis_rule",
    "repo_config",
]
