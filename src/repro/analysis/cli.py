"""The ``python -m repro.analysis`` command-line entry point.

Subcommands::

    check                      run every determinism rule plus the
                               purity-baseline diff; exit 0 when clean,
                               1 on findings/drift, 2 on usage errors
    explain RULE               print a rule's rationale, what it fails
                               on, and how to fix or waive it
    purity-map                 print the commit-path closure; with
                               --write-baseline, regenerate
                               analysis/purity_baseline.json

Exit codes and error reporting follow the ``repro.scenarios`` CLI
conventions: library errors become one ``error: ...`` line on stderr
with exit code 2, never a traceback; findings go to stdout with exit
code 1 so CI logs read naturally.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.config import AnalyzerConfig, repo_config
from repro.analysis.engine import analyze, write_baseline
from repro.analysis.purity import baseline_payload, build_purity_map
from repro.analysis.rules import analysis_rule_names, make_analysis_rule
from repro.analysis.source import load_package
from repro.cliutil import EXIT_ERROR, EXIT_FINDINGS, EXIT_OK, run_guarded
from repro.errors import ReproError

# Historical aliases; the shared contract lives in repro.cliutil.
CHECK_OK = EXIT_OK
CHECK_FINDINGS = EXIT_FINDINGS
CHECK_ERROR = EXIT_ERROR


def _config_from_args(args: argparse.Namespace) -> AnalyzerConfig:
    config = repo_config(Path(args.repo_root) if args.repo_root else None)
    if getattr(args, "no_baseline", False):
        config = AnalyzerConfig(
            root=config.root,
            package=config.package,
            purity_roots=config.purity_roots,
            wallclock_allowlist=config.wallclock_allowlist,
            unordered_extra_modules=config.unordered_extra_modules,
            float_modules=config.float_modules,
            message_modules=config.message_modules,
            baseline_path=None,
        )
    return config


def _cmd_check(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    rules = args.rules or None
    report = analyze(config, rules=rules)
    for line in report.render_lines():
        print(line)
    return CHECK_OK if report.ok else CHECK_FINDINGS


def _cmd_explain(args: argparse.Namespace) -> int:
    rule = make_analysis_rule(args.rule)
    print(rule.explain())
    return CHECK_OK


def _cmd_purity_map(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    modules = load_package(config.root, config.package)
    purity = build_purity_map(modules, config)
    if args.write_baseline:
        if config.baseline_path is None:
            raise ReproError("no baseline path configured for this tree")
        write_baseline(purity, Path(config.baseline_path))
        print(f"wrote {config.baseline_path}")
        return CHECK_OK
    payload = baseline_payload(purity)
    print(f"purity roots ({len(purity.roots)}):")
    for root in purity.roots:
        print(f"  {root}")
    print(f"import closure ({len(purity.closure)} modules):")
    for module_name in purity.closure:
        count = len(purity.functions_in(module_name))
        print(f"  {module_name}  ({count} reachable functions)")
    print(
        f"{len(purity.reachable)} reachable functions, "
        f"{purity.edge_count} call edges, digest {payload['digest']}"
    )
    return CHECK_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--repo-root",
        default=None,
        help="repository root to analyze (default: the repo containing this package)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="run the determinism rules")
    check.add_argument(
        "--rules",
        nargs="+",
        default=None,
        metavar="RULE",
        help=f"subset of rules to run (default: {' '.join(analysis_rule_names())})",
    )
    check.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the purity-baseline diff (rule findings only)",
    )

    explain = commands.add_parser("explain", help="print a rule's rationale")
    explain.add_argument("rule", help="rule id, e.g. DET003")

    purity = commands.add_parser("purity-map", help="print the commit-path closure")
    purity.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate analysis/purity_baseline.json from the current tree",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "check": _cmd_check,
        "explain": _cmd_explain,
        "purity-map": _cmd_purity_map,
    }
    return run_guarded(lambda: handlers[args.command](args))


if __name__ == "__main__":
    sys.exit(main())
