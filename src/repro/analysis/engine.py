"""Analysis orchestration: load, index, run rules, map purity, diff.

:func:`analyze` is the single entry point both the CLI and the tests
use.  It produces an :class:`AnalysisReport` carrying everything a
caller might render: active findings, waived findings, the purity map,
purity violations (DET001/DET002 findings reachable from the commit
path), and the baseline comparison when a baseline file is configured.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.config import AnalyzerConfig
from repro.analysis.purity import (
    MODULE_NODE,
    PurityMap,
    baseline_payload,
    build_purity_map,
    compare_baseline,
)
from repro.analysis.rules import analysis_rule_names, make_analysis_rule
from repro.analysis.rules.base import Finding, RuleContext
from repro.analysis.source import SourceModule, load_package
from repro.analysis.typeflow import build_project_index
from repro.errors import ReproError

# Rules whose findings poison the commit path outright: reachability
# from the ordering digest to one of these is a purity violation even
# if the finding itself was waived at its own site.
_PURITY_RULES = ("DET001", "DET002")


@dataclasses.dataclass(frozen=True)
class AnalysisReport:
    """Everything one analysis pass learned."""

    findings: Tuple[Finding, ...]
    waived: Tuple[Finding, ...]
    purity: PurityMap
    purity_violations: Tuple[Finding, ...]
    baseline_diff: Tuple[str, ...]
    module_count: int

    @property
    def ok(self) -> bool:
        return not self.findings and not self.purity_violations and not self.baseline_diff

    def render_lines(self) -> List[str]:
        """The ``check`` report, one line per problem plus a summary."""
        lines = [finding.render() for finding in self.findings]
        for violation in self.purity_violations:
            lines.append(f"{violation.render()} [reachable from the ordering digest]")
        for diff in self.baseline_diff:
            lines.append(f"purity baseline drift: {diff}")
        verdict = "FAIL" if not self.ok else "OK"
        lines.append(
            f"{verdict}: {len(self.findings)} finding(s), "
            f"{len(self.purity_violations)} purity violation(s), "
            f"{len(self.baseline_diff)} baseline drift line(s); "
            f"{len(self.waived)} waived; {self.module_count} modules scanned; "
            f"purity closure {len(self.purity.closure)} modules / "
            f"{len(self.purity.reachable)} reachable functions"
        )
        return lines


def analyze(
    config: AnalyzerConfig,
    rules: Optional[Sequence[str]] = None,
    modules: Optional[Dict[str, SourceModule]] = None,
) -> AnalysisReport:
    """Run ``rules`` (default: all registered) over the configured tree.

    ``modules`` can be supplied directly for in-memory fixtures; when
    omitted the package is loaded from ``config.root``.
    """
    if modules is None:
        modules = load_package(config.root, config.package)
    index = build_project_index(modules.values())
    purity = build_purity_map(modules, config)
    context = RuleContext(
        config=config,
        modules=modules,
        index=index,
        purity_closure=frozenset(purity.closure),
    )
    rule_names = tuple(rules) if rules is not None else analysis_rule_names()

    active: List[Finding] = []
    waived: List[Finding] = []
    purity_poison: List[Finding] = []
    for rule_name in rule_names:
        rule = make_analysis_rule(rule_name)
        for module_name in sorted(modules):
            module = modules[module_name]
            # Rules may emit duplicates when nested functions are walked
            # from both enclosing scopes; the sorted-set pass collapses
            # them and fixes the report order in one step.
            for finding in sorted(set(rule.check(module, context))):
                if rule_name in _PURITY_RULES:
                    purity_poison.append(finding)
                if module.is_waived(finding.rule, finding.line):
                    waived.append(finding)
                else:
                    active.append(finding)

    violations = _purity_violations(purity, purity_poison)
    current = baseline_payload(purity)
    baseline_diff: Tuple[str, ...] = ()
    if config.baseline_path is not None and Path(config.baseline_path).exists():
        baseline = load_baseline(Path(config.baseline_path))
        baseline_diff = tuple(compare_baseline(current, baseline))

    return AnalysisReport(
        findings=tuple(sorted(set(active))),
        waived=tuple(sorted(set(waived))),
        purity=purity,
        purity_violations=tuple(sorted(set(violations))),
        baseline_diff=baseline_diff,
        module_count=len(modules),
    )


def _purity_violations(
    purity: PurityMap, poison: Sequence[Finding]
) -> List[Finding]:
    """DET001/DET002 findings sitting on commit-path-reachable functions."""
    reachable = purity.reachable_set()
    violations = []
    for finding in poison:
        function = finding.function or MODULE_NODE
        if f"{finding.module}:{function}" in reachable:
            violations.append(finding)
    return violations


def load_baseline(path: Path) -> Dict[str, object]:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ReproError(f"cannot read purity baseline {str(path)!r}: {error}") from None
    try:
        data = json.loads(text)
    except ValueError as error:
        raise ReproError(f"purity baseline {str(path)!r} is not valid JSON: {error}") from None
    if not isinstance(data, dict):
        raise ReproError(f"purity baseline {str(path)!r} must be a JSON object")
    return data


def write_baseline(purity: PurityMap, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = baseline_payload(purity)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
