"""The digest purity map: what can the commit path reach?

The ordering digest is a fold over the vertices
:class:`~repro.consensus.bullshark.BullsharkConsensus` emits.  The set
of functions that computation can call — transitively, through the DAG
store, the canonical hashing helpers, and the leader schedule — is the
*commit path*.  This module computes an over-approximation of that set
in two stages:

1. **Module closure**: the transitive import closure of the configured
   purity roots within the scanned package.  Imports are an
   over-approximation of "can call into".
2. **Function reachability**: a call graph over the closure, resolved
   by name.  Calls that cannot be resolved precisely (method calls on
   values of unknown class) fall back to matching every closure
   function with the same bare name.  Over-approximating keeps the
   guarantee one-sided: the map may list a function the digest can
   never actually reach, but it cannot *miss* one that is reachable via
   a name the source mentions.

The map is serialised into ``analysis/purity_baseline.json`` (sorted,
with a content digest) and diffed by CI: a PR that newly drags a module
or function into the commit path must regenerate the baseline, making
the expansion reviewable — and if the new code trips DET001/DET002, the
check fails outright before any test runs.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.analysis.config import AnalyzerConfig
from repro.analysis.source import SourceModule, resolve_relative_import

BASELINE_VERSION = 1

# The pseudo-function under which module-level statements are recorded.
MODULE_NODE = "<module>"


@dataclasses.dataclass(frozen=True)
class PurityMap:
    """The commit-path closure, ready for reporting and serialisation."""

    roots: Tuple[str, ...]
    closure: Tuple[str, ...]
    reachable: Tuple[str, ...]  # "module:qualname", sorted
    edge_count: int

    def reachable_set(self) -> FrozenSet[str]:
        return frozenset(self.reachable)

    def functions_in(self, module: str) -> Tuple[str, ...]:
        prefix = f"{module}:"
        return tuple(node for node in self.reachable if node.startswith(prefix))


# -- module closure -----------------------------------------------------------------


def module_imports(module: SourceModule, modules: Dict[str, SourceModule]) -> Set[str]:
    """In-package modules that ``module`` imports (directly)."""
    found: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                found.update(_expand_module_name(name.name, modules))
        elif isinstance(node, ast.ImportFrom):
            resolved = resolve_relative_import(module.name, node, module.is_package)
            if resolved is None:
                continue
            found.update(_expand_module_name(resolved, modules))
            # ``from repro.dag import store`` imports a *module* through
            # its package; ``from repro.dag.store import DagStore``
            # imports a name.  Both resolve here.
            for name in node.names:
                candidate = f"{resolved}.{name.name}"
                if candidate in modules:
                    found.add(candidate)
    found.discard(module.name)
    return found


def _expand_module_name(name: str, modules: Dict[str, SourceModule]) -> Set[str]:
    """The module itself, when it is part of the scanned package.

    Ancestor packages are deliberately *not* pulled in: importing
    ``repro.dag.store`` does execute ``repro/__init__``, but treating
    every ancestor ``__init__`` as part of the commit path would fold
    the whole library into the closure (the top-level package imports
    broadly for convenience) and make the purity map meaningless.
    Package ``__init__`` re-exports that the commit path actually calls
    through still enter the closure via their own import statements.
    """
    return {name} if name in modules else set()


def import_closure(
    roots: Iterable[str], modules: Dict[str, SourceModule]
) -> Tuple[str, ...]:
    """Transitive import closure of ``roots``, sorted."""
    seen: Set[str] = set()
    frontier = sorted(root for root in roots if root in modules)
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        for imported in sorted(module_imports(modules[current], modules)):
            if imported not in seen:
                frontier.append(imported)
    return tuple(sorted(seen))


# -- call graph ---------------------------------------------------------------------


def _bare_name_index(
    closure: Iterable[str], modules: Dict[str, SourceModule]
) -> Dict[str, Dict[str, List[str]]]:
    """Per-module map from bare function name to full node ids."""
    index: Dict[str, Dict[str, List[str]]] = {}
    for module_name in closure:
        per_module: Dict[str, List[str]] = {}
        for qualname, _node in modules[module_name].functions():
            bare = qualname.rsplit(".", 1)[-1]
            per_module.setdefault(bare, []).append(f"{module_name}:{qualname}")
        index[module_name] = per_module
    return index


def _import_bindings(module: SourceModule, modules: Dict[str, SourceModule]):
    """Resolve names bound by imports: alias -> module, name -> (module, func)."""
    module_aliases: Dict[str, str] = {}
    name_bindings: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.name in modules:
                    module_aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom):
            resolved = resolve_relative_import(module.name, node, module.is_package)
            if resolved is None:
                continue
            for name in node.names:
                bound = name.asname or name.name
                submodule = f"{resolved}.{name.name}"
                if submodule in modules:
                    module_aliases[bound] = submodule
                elif resolved in modules:
                    name_bindings[bound] = (resolved, name.name)
    return module_aliases, name_bindings


def _call_targets(
    call: ast.Call,
    module: SourceModule,
    module_aliases: Dict[str, str],
    name_bindings: Dict[str, Tuple[str, str]],
    bare_index: Dict[str, Dict[str, List[str]]],
) -> List[str]:
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in name_bindings:
            target_module, target_name = name_bindings[name]
            return list(bare_index.get(target_module, {}).get(target_name, []))
        return list(bare_index.get(module.name, {}).get(name, []))
    if isinstance(func, ast.Attribute):
        attr = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id in module_aliases:
                target_module = module_aliases[receiver.id]
                return list(bare_index.get(target_module, {}).get(attr, []))
            if receiver.id == "self":
                local = bare_index.get(module.name, {}).get(attr)
                if local:
                    return list(local)
        # Unresolvable receiver: over-approximate by bare method name
        # across the whole closure.
        targets: List[str] = []
        for per_module in bare_index.values():
            targets.extend(per_module.get(attr, []))
        return targets
    return []


def _record_edges(
    edges: Dict[str, Set[str]],
    node_id: str,
    tree: ast.AST,
    module: SourceModule,
    module_aliases: Dict[str, str],
    name_bindings: Dict[str, Tuple[str, str]],
    bare_index: Dict[str, Dict[str, List[str]]],
) -> None:
    out = edges.setdefault(node_id, set())
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            out.update(
                _call_targets(node, module, module_aliases, name_bindings, bare_index)
            )


def build_purity_map(
    modules: Dict[str, SourceModule], config: AnalyzerConfig
) -> PurityMap:
    closure = import_closure(config.purity_roots, modules)
    closure_set = set(closure)
    bare_index = _bare_name_index(closure, modules)

    # Every function in the closure gets a node; module-level code gets
    # the MODULE_NODE pseudo-function.
    edges: Dict[str, Set[str]] = {}
    for module_name in closure:
        module = modules[module_name]
        module_aliases, name_bindings = _import_bindings(module, modules)
        for qualname, func in module.functions():
            _record_edges(
                edges, f"{module_name}:{qualname}", func,
                module, module_aliases, name_bindings, bare_index,
            )
        for stmt in ast.iter_child_nodes(module.tree):
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                _record_edges(
                    edges, f"{module_name}:{MODULE_NODE}", stmt,
                    module, module_aliases, name_bindings, bare_index,
                )
        edges.setdefault(f"{module_name}:{MODULE_NODE}", set())

    # Roots: everything defined at the root modules, plus module-level
    # code of every closure module (imports execute it).
    reachable: Set[str] = set()
    frontier: List[str] = []
    for module_name in closure:
        frontier.append(f"{module_name}:{MODULE_NODE}")
    for root in config.purity_roots:
        if root not in closure_set:
            continue
        for qualname, _func in modules[root].functions():
            frontier.append(f"{root}:{qualname}")
    while frontier:
        current = frontier.pop()
        if current in reachable:
            continue
        reachable.add(current)
        for target in edges.get(current, ()):
            if target not in reachable:
                frontier.append(target)

    edge_count = sum(len(targets) for targets in edges.values())
    return PurityMap(
        roots=tuple(sorted(root for root in config.purity_roots if root in closure_set)),
        closure=closure,
        reachable=tuple(sorted(reachable)),
        edge_count=edge_count,
    )


# -- baseline serialisation ---------------------------------------------------------


def baseline_payload(purity: PurityMap) -> Dict[str, object]:
    """The JSON document CI checks in and diffs."""
    body = {
        "version": BASELINE_VERSION,
        "roots": list(purity.roots),
        "closure": list(purity.closure),
        "reachable": list(purity.reachable),
    }
    digest = hashlib.sha256(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    return {**body, "digest": digest}


def compare_baseline(
    current: Dict[str, object], baseline: Dict[str, object]
) -> List[str]:
    """Human-readable differences between a fresh map and the baseline.

    Empty means in sync.  Lines are sorted so CI output is stable.
    """
    lines: List[str] = []
    if baseline.get("version") != current.get("version"):
        lines.append(
            f"baseline version {baseline.get('version')!r} != analyzer version "
            f"{current.get('version')!r}"
        )
    for key in ("roots", "closure", "reachable"):
        old = set(baseline.get(key) or [])
        new = set(current.get(key) or [])
        for added in sorted(new - old):
            lines.append(f"{key}: + {added}")
        for removed in sorted(old - new):
            lines.append(f"{key}: - {removed}")
    if not lines and baseline.get("digest") != current.get("digest"):
        lines.append(
            f"baseline digest {baseline.get('digest')} != current {current.get('digest')}"
        )
    return lines
