"""DET002 — no wall-clock reads outside the explicit allowlist.

Simulated time is the only clock the library may observe: every
latency, timeout, and throughput figure is derived from
:data:`repro.types.SimTime` values produced by the discrete-event
simulator.  A wall-clock read (``time.time``, ``time.perf_counter``,
``datetime.now``, ...) ties results to the host machine, which is
exactly the nondeterminism the repository exists to exclude — and it is
invisible to the differential tests as long as the value does not reach
a digest *yet*.

Wall-time belongs in the benchmark harness (``benchmarks/``, outside
the scanned tree) or in modules explicitly allowlisted in
:class:`~repro.analysis.config.AnalyzerConfig.wallclock_allowlist`
(none today).

**Fails on** calls and ``from``-imports of ``time.time``,
``time.time_ns``, ``monotonic``, ``perf_counter``, ``process_time``
(and ``_ns`` variants), ``datetime.datetime.now`` / ``utcnow`` /
``today``, and ``datetime.date.today`` — through import aliases.

**Fix** by taking a ``SimTime`` parameter from the simulator, or move
the measurement into the benchmark harness.  For a genuinely inert use
(log decoration in a module that can never reach a digest), allowlist
the module in the analyzer configuration rather than waiving line by
line, so the exemption is visible in one place.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.rules.base import AnalysisRule, Finding, RuleContext, alias_map
from repro.analysis.source import SourceModule

_TIME_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "localtime",
        "gmtime",
        "ctime",
    }
)
_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})


class WallClockRule(AnalysisRule):
    __doc__ = __doc__

    rule_id = "DET002"
    title = "no wall-clock reads"

    def check(self, module: SourceModule, context: RuleContext) -> Iterator[Finding]:
        if module.name in context.config.wallclock_allowlist:
            return
        time_aliases = set(alias_map(module, ("time",)))
        datetime_aliases = set(alias_map(module, ("datetime",)))
        # Names bound by ``from time import perf_counter`` and by
        # ``from datetime import datetime/date``.
        clock_names: Set[str] = set()
        datetime_classes: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for name in node.names:
                        if name.name in _TIME_FUNCTIONS:
                            yield self.finding(
                                module,
                                node,
                                f"'from time import {name.name}' reads the wall clock; "
                                "use simulator SimTime",
                            )
                            clock_names.add(name.asname or name.name)
                elif node.module == "datetime":
                    for name in node.names:
                        if name.name in {"datetime", "date"}:
                            datetime_classes.add(name.asname or name.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in clock_names:
                yield self.finding(
                    module, node, f"{func.id}() reads the wall clock; use simulator SimTime"
                )
            elif isinstance(func, ast.Attribute):
                receiver = func.value
                if isinstance(receiver, ast.Name):
                    if receiver.id in time_aliases and func.attr in _TIME_FUNCTIONS:
                        yield self.finding(
                            module,
                            node,
                            f"time.{func.attr}() reads the wall clock; use simulator SimTime",
                        )
                    elif receiver.id in datetime_classes and func.attr in _DATETIME_METHODS:
                        yield self.finding(
                            module,
                            node,
                            f"{receiver.id}.{func.attr}() reads the wall clock",
                        )
                elif (
                    isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id in datetime_aliases
                    and receiver.attr in {"datetime", "date"}
                    and func.attr in _DATETIME_METHODS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"datetime.{receiver.attr}.{func.attr}() reads the wall clock",
                    )
