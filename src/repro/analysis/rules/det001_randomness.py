"""DET001 — no unseeded or ambient randomness anywhere in the library.

Every random draw in the reproduction must flow from an explicit seed
carried by the scenario spec: ``random.Random(seed)`` instances threaded
through the simulator.  The module-level ``random`` functions
(``random.shuffle``, ``random.choice``, ...) share one interpreter-global
generator seeded from OS entropy; ``random.Random()`` with no arguments,
``random.SystemRandom``, ``os.urandom``, ``uuid`` and ``secrets`` are
nondeterministic by design.  Any of these inside ``src/repro`` makes an
honest run unreproducible, which silently breaks every digest
comparison in the differential suite.

**Fails on**

* ``import uuid`` / ``import secrets`` (no legitimate use exists here)
* ``random.<fn>(...)`` for any ``fn`` other than the ``Random``
  constructor, including ``from random import shuffle`` aliases
* ``random.Random()`` called with *no* seed argument
* ``random.SystemRandom`` and ``os.urandom`` in any form

**Fix** by threading a seeded ``random.Random(seed)`` from the scenario
spec (see ``repro.sim.runner``).  There is deliberately no waiver
example in-tree: if you believe you need ambient entropy in the
library, the design discussion belongs on the PR, and the waiver
comment (``# det: waive[DET001] reason``) forces exactly that.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.rules.base import AnalysisRule, Finding, RuleContext, alias_map
from repro.analysis.source import SourceModule

_FORBIDDEN_MODULES = ("uuid", "secrets")


class RandomnessRule(AnalysisRule):
    __doc__ = __doc__

    rule_id = "DET001"
    title = "no unseeded randomness"

    def check(self, module: SourceModule, context: RuleContext) -> Iterator[Finding]:
        random_aliases = set(alias_map(module, ("random",)))
        os_aliases = set(alias_map(module, ("os",)))
        # from-imports: names bound to module-global random functions,
        # and direct bindings of the forbidden helpers.
        ambient_names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    root = name.name.split(".")[0]
                    if root in _FORBIDDEN_MODULES:
                        yield self.finding(
                            module,
                            node,
                            f"import of {root!r}: nondeterministic by design, "
                            "thread a seeded random.Random instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module and node.module.split(".")[0] in _FORBIDDEN_MODULES:
                    yield self.finding(
                        module,
                        node,
                        f"import from {node.module!r}: nondeterministic by design",
                    )
                elif node.module == "random":
                    for name in node.names:
                        if name.name == "Random":
                            continue
                        yield self.finding(
                            module,
                            node,
                            f"'from random import {name.name}' binds the "
                            "interpreter-global RNG; use a seeded random.Random",
                        )
                        ambient_names.add(name.asname or name.name)
                elif node.module == "os":
                    for name in node.names:
                        if name.name == "urandom":
                            yield self.finding(
                                module, node, "os.urandom is OS entropy, not a seeded stream"
                            )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                receiver, attr = node.value.id, node.attr
                if receiver in random_aliases:
                    if attr == "SystemRandom":
                        yield self.finding(
                            module, node, "random.SystemRandom draws from OS entropy"
                        )
                    elif attr != "Random":
                        yield self.finding(
                            module,
                            node,
                            f"random.{attr} uses the interpreter-global RNG; "
                            "use a seeded random.Random instance",
                        )
                elif receiver in os_aliases and attr == "urandom":
                    yield self.finding(
                        module, node, "os.urandom is OS entropy, not a seeded stream"
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in random_aliases
                    and func.attr == "Random"
                    and not node.args
                    and not node.keywords
                ):
                    yield self.finding(
                        module,
                        node,
                        "random.Random() without a seed argument seeds from OS entropy",
                    )
