"""DET003 — no unordered iteration into ordering-sensitive sinks.

Iterating a ``set`` or ``frozenset`` observes an order the language
does not define; iterating a ``dict`` observes insertion order, which
is deterministic *only if* the insertion sequence is itself a protocol
invariant nobody has written down.  In the digest-affecting modules
(the purity closure of the commit path, plus the wire-facing modules
configured in ``unordered_extra_modules``), any such iteration whose
elements flow into an ordering-sensitive sink is a latent digest break:
it works today because CPython happens to iterate small int-tuple sets
consistently, and stops working on the first interpreter upgrade,
``PYTHONHASHSEED`` change, or refactor that perturbs insertion order.

**Ordering-sensitive sinks**: building a list (``append`` / ``extend``
/ ``insert``), materialising with ``list(...)`` / ``tuple(...)``,
``str.join``, hashing helpers (``digest_of`` / ``digest_hex`` /
``update``), ``yield``-ing, and message fan-out (``send`` /
``broadcast`` / ``schedule`` / ``schedule_delivery`` / ``put``).

**Not flagged**: iterations wrapped in ``sorted(...)``; loops that only
aggregate order-insensitively (sums, ``max``, set building); list
builds that are ``.sort()``-ed (or ``sorted(...)``-ed) later in the
same function, since the sort erases the iteration order.

**Fix** by wrapping the iterable in ``sorted(...)`` — every id type in
this library (``ValidatorId``, ``Round``, ``VertexId``) is totally
ordered precisely so this is always possible.  When the order is
genuinely part of the design (an eviction policy over an
insertion-ordered dict, fan-out over a registration-ordered endpoint
table), document the invariant with a ``# det: ordered -- reason``
waiver on the flagged line; the reason is the documentation.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.rules.base import AnalysisRule, Finding, RuleContext
from repro.analysis.source import SourceModule
from repro.analysis.typeflow import FunctionTypeFlow

# Method calls inside a loop body that are sensitive to the iteration
# order of the enclosing loop.  ``add`` is deliberately absent: building
# a set from a set is order-insensitive.
_ORDERED_BUILD_METHODS = frozenset({"append", "extend", "insert", "appendleft"})
_FANOUT_METHODS = frozenset(
    {"send", "broadcast", "schedule", "schedule_delivery", "put", "put_nowait", "write", "emit"}
)
_HASH_METHODS = frozenset({"update"})
_DIRECT_SINKS = frozenset({"list", "tuple"})
_HASH_FUNCTIONS = frozenset({"digest_of", "digest_hex"})


class UnorderedIterationRule(AnalysisRule):
    __doc__ = __doc__

    rule_id = "DET003"
    title = "no unordered iteration into ordering-sensitive sinks"

    def check(self, module: SourceModule, context: RuleContext) -> Iterator[Finding]:
        if not context.in_digest_scope(module):
            return
        for _qualname, func in module.functions():
            flow = FunctionTypeFlow(func, module, context.index)
            yield from self._check_function(module, func, flow)
        # Module-level statements (rare, but e.g. building a constant
        # tuple from a set literal at import time would qualify).
        module_flow = FunctionTypeFlow(module.tree, module, context.index)
        for node in ast.iter_child_nodes(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield from self._check_statement(module, node, module_flow)

    # -- per-function walk -----------------------------------------------------------

    def _check_function(
        self, module: SourceModule, func: ast.AST, flow: FunctionTypeFlow
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                continue  # nested defs get their own FunctionTypeFlow pass
            yield from self._check_node(module, node, flow)

    def _check_statement(
        self, module: SourceModule, stmt: ast.AST, flow: FunctionTypeFlow
    ) -> Iterator[Finding]:
        for node in ast.walk(stmt):
            yield from self._check_node(module, node, flow)

    def _check_node(
        self, module: SourceModule, node: ast.AST, flow: FunctionTypeFlow
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from self._check_loop(module, node, flow)
        elif isinstance(node, ast.Call):
            yield from self._check_call(module, node, flow)
        elif isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
            # A comprehension handed to the caller exposes its build
            # order; one consumed locally (e.g. a keys-to-delete list)
            # is judged by what it feeds, not by its existence.
            if isinstance(node.value, (ast.ListComp, ast.GeneratorExp)):
                for generator in node.value.generators:
                    if flow.is_unordered(generator.iter) and not flow.is_sorted_wrapper(
                        generator.iter
                    ):
                        yield self.finding(
                            module,
                            node,
                            "returned comprehension iterates an unordered "
                            f"{_describe(generator.iter)}; wrap the iterable in sorted(...)",
                        )
                        break

    def _check_loop(
        self, module: SourceModule, loop: ast.For, flow: FunctionTypeFlow
    ) -> Iterator[Finding]:
        if flow.is_sorted_wrapper(loop.iter) or not flow.is_unordered(loop.iter):
            return
        sink = _first_sink_in_body(loop, flow)
        if sink is None:
            return
        sink_node, description = sink
        yield Finding(
            path=module.path,
            line=loop.lineno,
            rule=self.rule_id,
            module=module.name,
            function=module.enclosing_function(loop.lineno),
            message=(
                f"iteration over unordered {_describe(loop.iter)} flows into "
                f"{description} (line {sink_node.lineno}); wrap the iterable in "
                "sorted(...) or document the order with '# det: ordered -- reason'"
            ),
        )

    def _check_call(
        self, module: SourceModule, call: ast.Call, flow: FunctionTypeFlow
    ) -> Iterator[Finding]:
        # digest_of/digest_hex are deliberately NOT direct-argument
        # sinks: the canonical encoder sorts sets and dict items, so
        # hashing an unordered container through it is deterministic.
        # They stay loop-body sinks, where per-item digests fold into a
        # rolling hash in iteration order.
        func = call.func
        sink_name: Optional[str] = None
        if isinstance(func, ast.Name) and func.id in _DIRECT_SINKS:
            sink_name = f"{func.id}(...)"
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            sink_name = "str.join"
        if sink_name is None:
            return
        for arg in call.args:
            unordered = flow.is_unordered(arg) and not flow.is_sorted_wrapper(arg)
            if not unordered and isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                unordered = any(
                    flow.is_unordered(generator.iter)
                    and not flow.is_sorted_wrapper(generator.iter)
                    for generator in arg.generators
                )
            if unordered:
                yield self.finding(
                    module,
                    call,
                    f"unordered {_describe(arg)} materialised through {sink_name}; "
                    "wrap it in sorted(...) or document the order with "
                    "'# det: ordered -- reason'",
                )
                break


def _first_sink_in_body(
    loop: ast.For, flow: FunctionTypeFlow
) -> Optional[Tuple[ast.AST, str]]:
    """The first ordering-sensitive sink in a loop body, if any.

    List builds whose receiver is sorted later in the function are
    skipped: the sort makes the build order unobservable.
    """
    for node in ast.walk(loop):
        if node is loop:
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return node, "a yield"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            receiver = node.func.value
            if attr in _ORDERED_BUILD_METHODS:
                if isinstance(receiver, ast.Name) and receiver.id in flow.sorted_names:
                    continue
                return node, f"list building ('.{attr}')"
            if attr in _FANOUT_METHODS:
                return node, f"message fan-out ('.{attr}')"
            if attr in _HASH_METHODS and _looks_like_hasher(receiver):
                return node, f"hashing ('.{attr}')"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in _HASH_FUNCTIONS:
                return node, f"hashing ({node.func.id})"
    return None


def _looks_like_hasher(receiver: ast.AST) -> bool:
    """Heuristic: ``.update`` is a hash sink only on hasher-ish names.

    ``set.update`` / ``dict.update`` are order-insensitive, so a bare
    ``.update`` cannot be treated as a sink; hashers in this code base
    are consistently named (``hasher``, ``digest``, ``sha``).
    """
    name = None
    if isinstance(receiver, ast.Name):
        name = receiver.id
    elif isinstance(receiver, ast.Attribute):
        name = receiver.attr
    if name is None:
        return False
    lowered = name.lower()
    return any(token in lowered for token in ("hash", "digest", "sha"))


def _describe(node: ast.AST) -> str:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set literal"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict literal"
    if isinstance(node, ast.Name):
        return f"value {node.id!r}"
    if isinstance(node, ast.Attribute):
        return f"value {node.attr!r}"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return f"result of {func.id}(...)"
        if isinstance(func, ast.Attribute):
            return f"result of .{func.attr}(...)"
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
        return "comprehension"
    return "container"
