"""The determinism-rule registry.

Mirrors the scoring-rule registry in :mod:`repro.core.scoring`: rules
register a zero-argument factory under their id, callers instantiate by
name, and unknown names raise :class:`~repro.errors.ConfigurationError`
listing what *is* registered.  Downstream experiments (or tests) can
register extra rules without touching this package.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.analysis.rules.base import AnalysisRule, Finding, RuleContext
from repro.errors import ConfigurationError

ANALYSIS_RULE_REGISTRY: Dict[str, Callable[[], AnalysisRule]] = {}


def register_analysis_rule(
    name: str,
    factory: Callable[[], AnalysisRule],
    *,
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name`` (a rule id such as ``DET003``).

    Double registration without ``replace=True`` is a configuration
    error, exactly as for scoring rules: silently shadowing a rule is
    how determinism gates rot.
    """
    if not replace and name in ANALYSIS_RULE_REGISTRY:
        raise ConfigurationError(f"analysis rule {name!r} is already registered")
    ANALYSIS_RULE_REGISTRY[name] = factory


def analysis_rule_names() -> Tuple[str, ...]:
    """Registered rule ids, in registration order."""
    return tuple(ANALYSIS_RULE_REGISTRY)


def make_analysis_rule(name: str) -> AnalysisRule:
    """Instantiate the rule registered under ``name``."""
    try:
        factory = ANALYSIS_RULE_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(ANALYSIS_RULE_REGISTRY)) or "none"
        raise ConfigurationError(
            f"unknown analysis rule {name!r} (known rules: {known})"
        ) from None
    return factory()


# -- built-in rules --------------------------------------------------------------
# Imported for their registration side effect, after the registry
# machinery exists (the rule modules import from this package's
# siblings, not from this module, so there is no cycle).

from repro.analysis.rules.det001_randomness import RandomnessRule
from repro.analysis.rules.det002_wallclock import WallClockRule
from repro.analysis.rules.det003_unordered import UnorderedIterationRule
from repro.analysis.rules.det004_float import FloatHazardRule
from repro.analysis.rules.det005_messages import WireMessageRule

register_analysis_rule("DET001", RandomnessRule)
register_analysis_rule("DET002", WallClockRule)
register_analysis_rule("DET003", UnorderedIterationRule)
register_analysis_rule("DET004", FloatHazardRule)
register_analysis_rule("DET005", WireMessageRule)

__all__ = [
    "ANALYSIS_RULE_REGISTRY",
    "AnalysisRule",
    "Finding",
    "RuleContext",
    "analysis_rule_names",
    "make_analysis_rule",
    "register_analysis_rule",
]
