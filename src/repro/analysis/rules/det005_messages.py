"""DET005 — wire-message hygiene for the broadcast and node layers.

Everything that crosses the simulated wire (``rbc/messages.py``,
``node/messages.py``) must satisfy two properties:

* **Canonically encodable**: every field's annotation must resolve to a
  type :func:`repro.crypto.hashing.digest_of` can serialise
  deterministically — scalars, ``bytes``, tuples/lists, frozensets/sets
  (the encoder sorts them), dicts (sorted by key), ``NamedTuple``
  identifiers like ``VertexId``, other checked message dataclasses, and
  classes that define ``canonical_fields()``.  A field whose type the
  encoder cannot canonicalise (an arbitrary object, a bare ``Any``)
  makes message digests — and therefore certificates and the ordering
  digest — depend on ``repr`` details or memory addresses.
* **No mutable defaults**: a ``list``/``dict``/``set`` default (or
  ``field(default_factory=list)``) is shared across instances, so one
  validator mutating its copy corrupts every message constructed after
  it — the classic aliasing bug, fatal in a protocol simulator where
  messages are compared and hashed.

**Fails on** any dataclass or NamedTuple field in the configured
``message_modules`` whose annotation is not provably encodable, and on
any mutable default value.

**Fix** by annotating with encodable types (prefer ``Tuple``/
``FrozenSet`` over ``List``/``Set`` for hashable messages) or by giving
the payload class a ``canonical_fields()`` method.  Waive with
``# det: waive[DET005] reason`` when a field deliberately carries an
open-ended payload whose concrete types are all canonical by
convention.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.rules.base import AnalysisRule, Finding, RuleContext
from repro.analysis.source import SourceModule
from repro.analysis.typeflow import annotation_terminal_name

# Annotation names the canonical encoder handles directly, including
# the library's own aliases for them (see repro.types).
_ENCODABLE_NAMES = frozenset(
    {
        "None",
        "bool",
        "int",
        "float",
        "str",
        "bytes",
        "complex",
        "tuple",
        "Tuple",
        "list",
        "List",
        "Sequence",
        "set",
        "Set",
        "frozenset",
        "FrozenSet",
        "AbstractSet",
        "dict",
        "Dict",
        "Mapping",
        "Optional",
        "Union",
        "ValidatorId",
        "Round",
        "Stake",
        "SimTime",
        "Digest",
    }
)

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


class WireMessageRule(AnalysisRule):
    __doc__ = __doc__

    rule_id = "DET005"
    title = "wire messages stay canonically encodable, without mutable defaults"

    def check(self, module: SourceModule, context: RuleContext) -> Iterator[Finding]:
        if module.name not in context.config.message_modules:
            return
        local_messages = {
            node.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef) and _is_message_class(node)
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_message_class(node):
                yield from self._check_class(module, node, context, local_messages)

    def _check_class(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        context: RuleContext,
        local_messages: set,
    ) -> Iterator[Finding]:
        for stmt in cls.body:
            if not (isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)):
                continue
            field_name = stmt.target.id
            if field_name.startswith("_") or _is_classvar(stmt.annotation):
                continue
            problem = _encodability_problem(stmt.annotation, context, local_messages)
            if problem:
                yield self.finding(
                    module,
                    stmt,
                    f"field {cls.name}.{field_name}: {problem}; message digests "
                    "would not be canonical",
                )
            if stmt.value is not None:
                default_problem = _mutable_default_problem(stmt.value)
                if default_problem:
                    yield self.finding(
                        module,
                        stmt,
                        f"field {cls.name}.{field_name} has a mutable default "
                        f"({default_problem}): shared across instances, use an "
                        "immutable default or default_factory with an immutable type",
                    )


def _is_message_class(node: ast.ClassDef) -> bool:
    """Dataclasses and NamedTuples declared in a message module."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if annotation_terminal_name(target) == "dataclass":
            return True
    return any(annotation_terminal_name(base) == "NamedTuple" for base in node.bases)


def _is_classvar(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Subscript):
        return annotation_terminal_name(annotation.value) == "ClassVar"
    return annotation_terminal_name(annotation) == "ClassVar"


def _encodability_problem(
    annotation: ast.AST,
    context: RuleContext,
    local_messages: set,
) -> Optional[str]:
    """Why ``annotation`` is not canonically encodable, or ``None`` if it is.

    Container annotations are checked recursively over their type
    arguments; bare names resolve through the project-wide canonical
    class index (``canonical_fields`` definers and NamedTuples).
    """
    if isinstance(annotation, ast.Constant):
        if annotation.value is None:
            return None
        if isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return f"unparseable string annotation {annotation.value!r}"
        else:
            return f"unexpected annotation literal {annotation.value!r}"
    if isinstance(annotation, ast.Subscript):
        base = annotation_terminal_name(annotation.value)
        if base == "ClassVar":
            return None
        if base not in _ENCODABLE_NAMES:
            return _name_problem(base, context, local_messages)
        inner = annotation.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        for element in elements:
            if isinstance(element, ast.Constant) and element.value is Ellipsis:
                continue
            problem = _encodability_problem(element, context, local_messages)
            if problem:
                return problem
        return None
    name = annotation_terminal_name(annotation)
    return _name_problem(name, context, local_messages)


def _name_problem(
    name: Optional[str], context: RuleContext, local_messages: set
) -> Optional[str]:
    if name is None:
        return "annotation too dynamic to verify"
    if name == "Any":
        return "'Any' cannot be proven canonically encodable"
    if name in _ENCODABLE_NAMES:
        return None
    if name in local_messages:
        return None
    if name in context.index.canonical_classes:
        return None
    return (
        f"type {name!r} neither defines canonical_fields() nor is a "
        "NamedTuple/known-encodable type"
    )


def _mutable_default_problem(value: ast.AST) -> Optional[str]:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return "literal"
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_FACTORIES:
            return f"{func.id}()"
        # dataclasses.field(default_factory=list)
        target = annotation_terminal_name(func)
        if target == "field":
            for keyword in value.keywords:
                if keyword.arg == "default_factory":
                    factory = annotation_terminal_name(keyword.value)
                    if factory in _MUTABLE_FACTORIES:
                        return f"default_factory={factory}"
    return None
