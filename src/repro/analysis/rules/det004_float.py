"""DET004 — no float equality or accumulation-order hazards in scoring paths.

Reputation scores, stake fractions, and simulated timestamps are
floats.  Two float hazards can silently fork the leader schedule
across refactors while every individual run stays self-consistent:

* **Equality**: ``a == b`` on floats holds or fails depending on the
  exact sequence of operations that produced ``a`` and ``b``.  A
  schedule decision guarded by float equality can flip when an
  algebraically-equivalent refactor changes rounding.
* **Accumulation order**: float addition and multiplication are not
  associative.  Summing scores in ``set``/``dict`` iteration order, or
  multiplying loss probabilities in dict order, produces results that
  depend on insertion/hash order — the same hazard DET003 tracks, but
  reaching the digest through arithmetic instead of sequence building.

The rule runs only over the configured ``float_modules`` (the stake and
scoring paths named in the issue, plus the transport whose delivery
timestamps feed arrival order).

**Fails on** (in scope): ``==`` / ``!=`` where either side is
float-typed; ``sum(...)`` over an unordered container; float ``+=`` /
``*=`` / ``-=`` accumulation inside a loop over an unordered container.

**Fix** equality with explicit comparisons against exact values
(integers, fractions) or strict inequalities; fix accumulation order by
iterating ``sorted(...)`` so every replica folds in the same sequence.
Waive with ``# det: waive[DET004] reason`` only when the arithmetic is
provably order-insensitive (e.g. integer-valued floats).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import AnalysisRule, Finding, RuleContext
from repro.analysis.source import SourceModule
from repro.analysis.typeflow import FunctionTypeFlow

_ACCUMULATING_OPS = (ast.Add, ast.Mult, ast.Sub)


class FloatHazardRule(AnalysisRule):
    __doc__ = __doc__

    rule_id = "DET004"
    title = "no float equality / accumulation-order hazards"

    def check(self, module: SourceModule, context: RuleContext) -> Iterator[Finding]:
        if module.name not in context.config.float_modules:
            return
        for _qualname, func in module.functions():
            flow = FunctionTypeFlow(func, module, context.index)
            for node in ast.walk(func):
                if isinstance(node, ast.Compare):
                    yield from self._check_compare(module, node, flow)
                elif isinstance(node, ast.Call):
                    yield from self._check_sum(module, node, flow)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    yield from self._check_accumulation(module, node, flow)

    def _check_compare(
        self, module: SourceModule, node: ast.Compare, flow: FunctionTypeFlow
    ) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if flow.is_float(left) or flow.is_float(right):
                yield self.finding(
                    module,
                    node,
                    "float equality comparison: the outcome depends on rounding "
                    "history; compare against exact values or use strict inequalities",
                )
                break

    def _check_sum(
        self, module: SourceModule, node: ast.Call, flow: FunctionTypeFlow
    ) -> Iterator[Finding]:
        if not (isinstance(node.func, ast.Name) and node.func.id == "sum" and node.args):
            return
        iterable = node.args[0]
        if flow.is_sorted_wrapper(iterable):
            return
        unordered = flow.is_unordered(iterable)
        if not unordered and isinstance(iterable, ast.GeneratorExp):
            unordered = any(
                flow.is_unordered(generator.iter)
                and not flow.is_sorted_wrapper(generator.iter)
                for generator in iterable.generators
            )
        if unordered:
            yield self.finding(
                module,
                node,
                "sum() over an unordered container: float addition is not "
                "associative, so the result depends on iteration order; "
                "sum over sorted(...) instead",
            )

    def _check_accumulation(
        self, module: SourceModule, loop: ast.For, flow: FunctionTypeFlow
    ) -> Iterator[Finding]:
        if flow.is_sorted_wrapper(loop.iter) or not flow.is_unordered(loop.iter):
            return
        for node in ast.walk(loop):
            if not isinstance(node, ast.AugAssign):
                continue
            if not isinstance(node.op, _ACCUMULATING_OPS):
                continue
            if flow.is_float(node.target) or flow.is_float(node.value):
                yield self.finding(
                    module,
                    loop,
                    "float accumulation inside a loop over an unordered container "
                    f"(line {node.lineno}): fold order changes the result; "
                    "iterate sorted(...) so every replica folds identically",
                )
                return
