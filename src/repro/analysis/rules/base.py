"""Finding and rule interfaces for the determinism auditor.

A rule inspects one :class:`~repro.analysis.source.SourceModule` at a
time through a shared :class:`RuleContext` and yields
:class:`Finding` records.  Rules never consult waivers — the engine
filters waived findings afterwards so waiver accounting lives in one
place.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, Tuple

from repro.analysis.source import SourceModule
from repro.analysis.typeflow import ProjectIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.analysis.config import AnalyzerConfig


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One determinism violation, anchored to a source line.

    Ordered so reports sort stably by location, then rule.
    """

    path: str
    line: int
    rule: str
    module: str
    function: str
    message: str

    def render(self) -> str:
        where = f" [{self.function}]" if self.function and self.function != "<module>" else ""
        return f"{self.path}:{self.line}: {self.rule}{where} {self.message}"


@dataclasses.dataclass(frozen=True)
class RuleContext:
    """Everything a rule may consult beyond the module under inspection."""

    config: "AnalyzerConfig"
    modules: Dict[str, SourceModule]
    index: ProjectIndex
    purity_closure: FrozenSet[str]

    def in_digest_scope(self, module: SourceModule) -> bool:
        """Modules where iteration order can reach the ordering digest."""
        return (
            module.name in self.purity_closure
            or module.name in self.config.unordered_extra_modules
        )


class AnalysisRule:
    """Base class for determinism rules.

    Subclasses set ``rule_id`` / ``title`` and implement :meth:`check`.
    The class docstring doubles as the ``explain RULE`` text, so write
    it for the engineer whose PR the rule just failed.
    """

    rule_id: str = "DET000"
    title: str = "abstract rule"

    def check(self, module: SourceModule, context: RuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            path=module.path,
            line=line,
            rule=self.rule_id,
            module=module.name,
            function=module.enclosing_function(line),
            message=message,
        )

    def explain(self) -> str:
        doc = (self.__doc__ or "").strip()
        return f"{self.rule_id}: {self.title}\n\n{doc}\n"


def alias_map(module: SourceModule, targets: Tuple[str, ...]) -> Dict[str, str]:
    """Names under which any of ``targets`` (module paths) are imported.

    ``import time`` -> ``{"time": "time"}``; ``import time as clock`` ->
    ``{"clock": "time"}``.  ``from X import Y`` aliases are handled by
    the individual rules because the interesting names differ per rule.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.name in targets:
                    aliases[name.asname or name.name] = name.name
    return aliases
