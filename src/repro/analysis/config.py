"""Analyzer configuration: scopes, allowlists, and repository defaults.

The rules themselves are generic AST machinery; everything
repository-specific — which modules form the commit path, which modules
carry wire messages, where wall-clock reads are tolerable — lives in an
:class:`AnalyzerConfig`.  Tests build small configs over toy packages;
the CLI and CI use :func:`repo_config`, the single source of truth for
what "the digest-affecting core" means in this repository.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional, Tuple

# Modules whose source defines the commit path: the ordering digest is
# a fold over what BullsharkConsensus emits, which is a function of the
# DAG store contents, the vertex/canonical hashing, and the leader
# schedule.  The purity closure is the transitive import closure of
# these roots within the scanned package.
DEFAULT_PURITY_ROOTS: Tuple[str, ...] = (
    "repro.consensus.bullshark",
    "repro.dag.store",
    "repro.crypto.hashing",
    "repro.schedule.base",
    "repro.schedule.round_robin",
)

# Digest-adjacent modules that are not imported by the commit path but
# decide *what reaches it* (vertex arrival order, certificate contents,
# schedule updates), so DET003's unordered-iteration discipline applies
# to them too.
DEFAULT_UNORDERED_EXTRAS: Tuple[str, ...] = (
    "repro.node.validator",
    "repro.rbc.base",
    "repro.rbc.bracha",
    "repro.rbc.certified",
    "repro.rbc.messages",
    "repro.network.transport",
    "repro.sim.runner",
    "repro.core.manager",
    "repro.core.scoring",
    "repro.core.scores",
    "repro.core.schedule_change",
)

# Float arithmetic scope (DET004): stake fractions, reputation scores,
# and the transport whose float delivery timestamps decide arrival
# order.
DEFAULT_FLOAT_MODULES: Tuple[str, ...] = (
    "repro.committee.stake",
    "repro.core.scoring",
    "repro.core.scores",
    "repro.core.schedule_change",
    "repro.core.manager",
    "repro.network.transport",
)

# Wire-message scope (DET005).
DEFAULT_MESSAGE_MODULES: Tuple[str, ...] = (
    "repro.rbc.messages",
    "repro.node.messages",
)

# Modules allowed to read the wall clock (DET002).  The observability
# profiler measures real elapsed time by design; it is opt-in, lives
# outside the purity closure (never imported by repro.obs.__init__ or
# any traced component), and its numbers are kept out of digests,
# traces, and artifact comparisons.  The netexec trio is the
# real-network backend: monotonic clocks and sockets are its job, its
# digests are protected by lockstep content-determinism instead of
# virtual time (see repro/netexec/lockstep.py — itself pure and
# deliberately *not* allowlisted), and none of these modules is ever
# imported by the purity closure.
DEFAULT_WALLCLOCK_ALLOWLIST: Tuple[str, ...] = (
    "repro.obs.profiler",
    "repro.netexec.clock",
    "repro.netexec.transport",
    "repro.netexec.runner",
)


@dataclasses.dataclass(frozen=True)
class AnalyzerConfig:
    """Where to scan and which module plays which role."""

    root: Path
    package: str = "repro"
    purity_roots: Tuple[str, ...] = DEFAULT_PURITY_ROOTS
    wallclock_allowlist: Tuple[str, ...] = DEFAULT_WALLCLOCK_ALLOWLIST
    unordered_extra_modules: Tuple[str, ...] = DEFAULT_UNORDERED_EXTRAS
    float_modules: Tuple[str, ...] = DEFAULT_FLOAT_MODULES
    message_modules: Tuple[str, ...] = DEFAULT_MESSAGE_MODULES
    baseline_path: Optional[Path] = None


def repo_config(repo_root: Optional[Path] = None) -> AnalyzerConfig:
    """The configuration for this repository's own source tree.

    ``repo_root`` defaults to the repository containing this file
    (``src/repro/analysis/config.py`` -> three parents up), so the CLI
    works from any working directory.
    """
    if repo_root is None:
        repo_root = Path(__file__).resolve().parents[3]
    return AnalyzerConfig(
        root=repo_root / "src",
        baseline_path=repo_root / "analysis" / "purity_baseline.json",
    )
