"""Source loading, waiver parsing, and AST bookkeeping.

A :class:`SourceModule` pairs a parsed AST with everything the rules
need to report findings against it: the dotted module name, the file
path, the raw lines, the per-line waivers, and an index of function
spans so a line number can be mapped back to the enclosing function.

Waivers are ordinary comments::

    # det: ordered -- insertion order is the eviction policy
    # det: waive[DET005] payload carries canonical-fields vertices

``det: ordered`` is sugar for waiving DET003 (the unordered-iteration
rule) on that line; ``det: waive[RULE]`` waives any rule by id, with a
comma-separated list allowed.  A waiver applies to findings on its own
line and on the line directly below it, so a comment can sit above the
statement it excuses.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import ReproError

# ``det: ordered`` may carry a trailing justification after ``--``.
_ORDERED_RE = re.compile(r"#\s*det:\s*ordered\b")
_WAIVE_RE = re.compile(r"#\s*det:\s*waive\[([A-Z0-9,\s]+)\]")

# The rule id DET003 is what ``det: ordered`` expands to; kept here so
# the sugar stays in one place.
ORDERED_WAIVER_RULE = "DET003"


@dataclasses.dataclass(frozen=True)
class FunctionSpan:
    """Line extent of one function or method definition."""

    qualname: str
    lineno: int
    end_lineno: int


class SourceModule:
    """One parsed source file plus its analysis bookkeeping."""

    def __init__(self, name: str, path: str, text: str, is_package: bool = False) -> None:
        self.name = name
        self.path = path
        self.text = text
        self.is_package = is_package
        try:
            self.tree = ast.parse(text, filename=path)
        except SyntaxError as error:
            raise ReproError(f"cannot parse {path!r}: {error}") from None
        self.lines: List[str] = text.splitlines()
        self.waivers: Dict[int, Set[str]] = _parse_waivers(self.lines)
        self.function_spans: Tuple[FunctionSpan, ...] = tuple(_function_spans(self.tree))

    # -- waivers --------------------------------------------------------------------

    def is_waived(self, rule: str, line: int) -> bool:
        """``True`` when ``rule`` is waived at ``line`` (same or previous line)."""
        for candidate in (line, line - 1):
            waived = self.waivers.get(candidate)
            if waived and (rule in waived or "*" in waived):
                return True
        return False

    # -- function lookup ------------------------------------------------------------

    def enclosing_function(self, line: int) -> str:
        """Qualified name of the innermost function containing ``line``.

        Returns ``"<module>"`` for module-level code.  Spans are emitted
        outermost-first, so the last match is the innermost.
        """
        best = "<module>"
        for span in self.function_spans:
            if span.lineno <= line <= span.end_lineno:
                best = span.qualname
        return best

    def functions(self) -> Iterator[Tuple[str, ast.AST]]:
        """Yield ``(qualname, node)`` for every function/method definition."""
        yield from _walk_functions(self.tree, prefix="")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SourceModule({self.name!r})"


def _parse_waivers(lines: List[str]) -> Dict[int, Set[str]]:
    waivers: Dict[int, Set[str]] = {}
    for index, line in enumerate(lines, start=1):
        if "#" not in line or "det:" not in line:
            continue
        rules: Set[str] = set()
        if _ORDERED_RE.search(line):
            rules.add(ORDERED_WAIVER_RULE)
        match = _WAIVE_RE.search(line)
        if match:
            rules.update(part.strip() for part in match.group(1).split(",") if part.strip())
        if rules:
            waivers.setdefault(index, set()).update(rules)
            # A waiver opening a comment block slides through the
            # remaining comment-only lines to the statement below it, so
            # justifications may span several lines.
            cursor = index
            while cursor < len(lines) and lines[cursor].lstrip().startswith("#"):
                cursor += 1
                waivers.setdefault(cursor, set()).update(rules)
    return waivers


def _walk_functions(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{child.name}"
            yield qualname, child
            yield from _walk_functions(child, prefix=f"{qualname}.")
        elif isinstance(child, ast.ClassDef):
            yield from _walk_functions(child, prefix=f"{prefix}{child.name}.")


def _function_spans(tree: ast.AST) -> Iterator[FunctionSpan]:
    for qualname, node in _walk_functions(tree, prefix=""):
        end = getattr(node, "end_lineno", None) or node.lineno
        yield FunctionSpan(qualname=qualname, lineno=node.lineno, end_lineno=end)


# -- package loading ---------------------------------------------------------------


def module_from_source(name: str, path: str, text: str) -> SourceModule:
    """Build a :class:`SourceModule` from in-memory text (tests, fixtures)."""
    return SourceModule(name=name, path=path, text=text)


def load_package(root: Path, package: str) -> Dict[str, SourceModule]:
    """Load every ``.py`` file of ``package`` under ``root``.

    ``root`` is the directory *containing* the package (``src/`` in this
    repository).  Files are discovered in sorted order so the analysis
    itself is deterministic.  Returns a mapping from dotted module name
    to :class:`SourceModule`.
    """
    package_dir = root / package.replace(".", "/")
    if not package_dir.is_dir():
        raise ReproError(f"package directory {str(package_dir)!r} does not exist")
    modules: Dict[str, SourceModule] = {}
    for path in sorted(package_dir.rglob("*.py")):
        relative = path.relative_to(root)
        parts = list(relative.with_suffix("").parts)
        is_package = parts[-1] == "__init__"
        if is_package:
            parts = parts[:-1]
        name = ".".join(parts)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise ReproError(f"cannot read {str(path)!r}: {error}") from None
        modules[name] = SourceModule(name=name, path=str(relative), text=text, is_package=is_package)
    return modules


def resolve_relative_import(module: str, node: ast.ImportFrom, is_package: bool = False) -> Optional[str]:
    """Resolve a (possibly relative) ``from X import Y`` to a dotted name.

    Returns the absolute module the import targets, or ``None`` when the
    relative import climbs above the package root.  ``is_package`` marks
    ``__init__`` modules, whose dotted name is already their package, so
    one fewer component is stripped per relative level.
    """
    if node.level == 0:
        return node.module
    parts = module.split(".")
    # Level 1 from a plain module strips the module's own name; each
    # extra level strips one more package.  An ``__init__`` module's
    # name already is its package name, so it strips one fewer.
    strip = node.level - 1 if is_package else node.level
    if strip > len(parts):
        return None
    base = parts[: len(parts) - strip]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None
