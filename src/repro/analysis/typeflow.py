"""Best-effort, function-local type flow for the determinism rules.

The analyzer does not type-check; it answers two narrow questions about
an expression, each deliberately over-approximated in the direction
that catches nondeterminism:

* :meth:`FunctionTypeFlow.is_unordered` — can this expression hold a
  ``set`` / ``frozenset`` / ``dict`` view, whose iteration order is not
  a language guarantee?
* :meth:`FunctionTypeFlow.is_float` — can this expression hold a
  ``float``, whose ``==`` and accumulation order are hazards?

Evidence comes from literals, constructor calls, annotations on
parameters and locals, ``self.attr`` annotations collected from class
bodies, and a project-wide index of return annotations keyed by bare
function name (:class:`ProjectIndex`).  Wrapping an iterable in
``sorted(...)`` is the one recognised neutralizer: a sorted unordered
container is, by construction, deterministic.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.source import SourceModule

# Annotation names whose values iterate in an order the language does
# not pin down across processes (sets) or that rules treat as ordering
# hazards unless sorted (dict views: insertion-ordered, but insertion
# order is an implicit protocol invariant the rule forces callers to
# either sort or document).
UNORDERED_ANNOTATIONS: FrozenSet[str] = frozenset(
    {
        "set",
        "frozenset",
        "dict",
        "Set",
        "FrozenSet",
        "MutableSet",
        "AbstractSet",
        "Dict",
        "Mapping",
        "MutableMapping",
        "DefaultDict",
        "defaultdict",
        "Counter",
        "KeysView",
        "ValuesView",
        "ItemsView",
    }
)

FLOAT_ANNOTATIONS: FrozenSet[str] = frozenset({"float", "SimTime"})

# Wrappers that preserve the (un)ordered-ness of their argument.
_TRANSPARENT_WRAPPERS: FrozenSet[str] = frozenset({"reversed", "iter"})

# Constructor names that build unordered containers.
_UNORDERED_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"set", "frozenset", "dict", "Counter", "defaultdict"}
)

# Methods returning unordered views/copies when called on an unordered
# receiver (or on anything, for the dict-view trio).
_DICT_VIEW_METHODS: FrozenSet[str] = frozenset({"keys", "values", "items"})
_SET_ALGEBRA_METHODS: FrozenSet[str] = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


def annotation_terminal_name(node: Optional[ast.AST]) -> Optional[str]:
    """The rightmost bare name of an annotation (``typing.Dict`` -> ``Dict``).

    ``Optional[X]`` / ``Final[X]`` / ``Annotated[X, ...]`` / ``ClassVar[X]``
    unwrap to ``X``; string annotations are parsed.  Returns ``None``
    when no name can be extracted.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = annotation_terminal_name(node.value)
        if base in {"Optional", "Final", "Annotated", "ClassVar"}:
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return annotation_terminal_name(inner)
        return base
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def annotation_is_unordered(node: Optional[ast.AST]) -> bool:
    return annotation_terminal_name(node) in UNORDERED_ANNOTATIONS


def annotation_is_float(node: Optional[ast.AST]) -> bool:
    return annotation_terminal_name(node) in FLOAT_ANNOTATIONS


@dataclasses.dataclass(frozen=True)
class ProjectIndex:
    """Cross-module evidence shared by every rule invocation.

    All three maps are keyed by *bare* name, deliberately ignoring which
    class or module defines it: when any definition of ``edges`` is a
    ``FrozenSet``, an attribute access ``x.edges`` is presumed unordered.
    That over-approximation can only create findings (answered with a
    waiver), never hide one.
    """

    # bare function/method name -> {"unordered", "float", "other"} kinds seen
    return_kinds: Dict[str, FrozenSet[str]]
    # bare attribute/field name -> {"unordered", "float", "other"} kinds seen
    field_kinds: Dict[str, FrozenSet[str]]
    # module name -> module-level global name -> kind (bare-Name lookups
    # stay module-local: a local variable must never inherit the kind of
    # a same-named field in some unrelated class)
    module_globals: Dict[str, Dict[str, str]]
    # class names defining canonical_fields(), plus NamedTuple subclasses
    canonical_classes: FrozenSet[str]

    def return_kind(self, name: str) -> Optional[str]:
        """The single return kind of ``name`` across the project, if unanimous."""
        kinds = self.return_kinds.get(name)
        if kinds and len(kinds) == 1:
            return next(iter(kinds))
        return None

    def field_kind(self, name: str) -> Optional[str]:
        kinds = self.field_kinds.get(name)
        if kinds and len(kinds) == 1:
            return next(iter(kinds))
        return None


def build_project_index(modules: Iterable[SourceModule]) -> ProjectIndex:
    """Scan every module once for annotation evidence."""
    return_kinds: Dict[str, Set[str]] = {}
    field_kinds: Dict[str, Set[str]] = {}
    module_globals: Dict[str, Dict[str, str]] = {}
    canonical: Set[str] = set()
    for module in modules:
        globals_here: Dict[str, str] = {}
        for stmt in ast.iter_child_nodes(module.tree):
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                globals_here[stmt.target.id] = _annotation_kind(stmt.annotation)
            elif isinstance(stmt, ast.Assign):
                kind = _literal_kind(stmt.value)
                if kind != "other":
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            globals_here[target.id] = kind
        module_globals[module.name] = globals_here
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                kind = _annotation_kind(node.returns)
                return_kinds.setdefault(node.name, set()).add(kind)
            elif isinstance(node, ast.ClassDef):
                if _is_namedtuple(node) or _defines_canonical_fields(node):
                    canonical.add(node.name)
                for field_name, annotation in _class_field_annotations(node):
                    field_kinds.setdefault(field_name, set()).add(_annotation_kind(annotation))
    return ProjectIndex(
        return_kinds={name: frozenset(kinds) for name, kinds in return_kinds.items()},
        field_kinds={name: frozenset(kinds) for name, kinds in field_kinds.items()},
        module_globals=module_globals,
        canonical_classes=frozenset(canonical),
    )


def _literal_kind(value: ast.AST) -> str:
    """Kind evidence from an unannotated module-level assignment."""
    if isinstance(value, (ast.Set, ast.Dict, ast.SetComp, ast.DictComp)):
        return "unordered"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in _UNORDERED_CONSTRUCTORS:
            return "unordered"
        if value.func.id == "float":
            return "float"
    if isinstance(value, ast.Constant) and isinstance(value.value, float):
        return "float"
    return "other"


def _annotation_kind(annotation: Optional[ast.AST]) -> str:
    if annotation_is_unordered(annotation):
        return "unordered"
    if annotation_is_float(annotation):
        return "float"
    return "other"


def _is_namedtuple(node: ast.ClassDef) -> bool:
    for base in node.bases:
        if annotation_terminal_name(base) == "NamedTuple":
            return True
    return False


def _defines_canonical_fields(node: ast.ClassDef) -> bool:
    return any(
        isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        and child.name == "canonical_fields"
        for child in node.body
    )


def _class_field_annotations(node: ast.ClassDef) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(name, annotation)`` for class-level and ``self.x: T`` fields."""
    for child in node.body:
        if isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
            yield child.target.id, child.annotation
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in ast.walk(child):
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Attribute)
                    and isinstance(stmt.target.value, ast.Name)
                    and stmt.target.value.id == "self"
                ):
                    yield stmt.target.attr, stmt.annotation


class FunctionTypeFlow:
    """Unordered/float inference scoped to one function body."""

    def __init__(self, func: ast.AST, module: SourceModule, index: ProjectIndex) -> None:
        self.func = func
        self.module = module
        self.index = index
        self.unordered_names: Set[str] = set()
        self.float_names: Set[str] = set()
        self.sorted_names: Set[str] = set()
        self.local_bindings: Set[str] = set()
        self._module_globals = index.module_globals.get(module.name, {})
        self._collect()

    # -- evidence gathering ----------------------------------------------------------

    def _collect(self) -> None:
        args = getattr(self.func, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                self.local_bindings.add(arg.arg)
                if annotation_is_unordered(arg.annotation):
                    self.unordered_names.add(arg.arg)
                elif annotation_is_float(arg.annotation):
                    self.float_names.add(arg.arg)
        # Every name the function binds shadows a module global of the
        # same name, so bare-Name kind lookups must not fall through.
        for node in ast.walk(self.func):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
                targets = [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = [node.target]
            elif isinstance(node, ast.comprehension):
                targets = [node.target]
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                targets = [node.optional_vars]
            elif isinstance(node, ast.ExceptHandler) and node.name:
                self.local_bindings.add(node.name)
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        self.local_bindings.add(leaf.id)
        # Two passes over assignments so ``a = set(); b = a`` resolves.
        for _ in range(2):
            for node in ast.walk(self.func):
                if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                    if annotation_is_unordered(node.annotation):
                        self.unordered_names.add(node.target.id)
                    elif annotation_is_float(node.annotation):
                        self.float_names.add(node.target.id)
                elif isinstance(node, ast.Assign):
                    targets = [t for t in node.targets if isinstance(t, ast.Name)]
                    if not targets:
                        continue
                    if self.is_unordered(node.value):
                        self.unordered_names.update(t.id for t in targets)
                    if self.is_float(node.value):
                        self.float_names.update(t.id for t in targets)
        # Names that are sorted *somewhere* in the function: either
        # ``x.sort()`` or ``sorted(x)``.  Used to suppress list-building
        # findings when the built list is sorted before it can matter.
        for node in ast.walk(self.func):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"
                    and isinstance(node.func.value, ast.Name)
                ):
                    self.sorted_names.add(node.func.value.id)
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "sorted"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                ):
                    self.sorted_names.add(node.args[0].id)

    # -- unordered inference ---------------------------------------------------------

    def is_unordered(self, node: ast.AST) -> bool:
        """Can ``node`` evaluate to a set/frozenset/dict (view)?"""
        if isinstance(node, (ast.Set, ast.Dict, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Name):
            if node.id in self.unordered_names:
                return True
            if node.id in self.local_bindings:
                return False
            return self._module_globals.get(node.id) == "unordered"
        if isinstance(node, ast.Attribute):
            return self.index.field_kind(node.attr) == "unordered"
        if isinstance(node, ast.IfExp):
            return self.is_unordered(node.body) or self.is_unordered(node.orelse)
        if isinstance(node, ast.Starred):
            return self.is_unordered(node.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_unordered(node.left) or self.is_unordered(node.right)
        if isinstance(node, ast.Call):
            return self._call_is_unordered(node)
        return False

    def _call_is_unordered(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "sorted":
                return False
            if func.id in _UNORDERED_CONSTRUCTORS:
                return True
            if func.id in _TRANSPARENT_WRAPPERS and node.args:
                return self.is_unordered(node.args[0])
            return self.index.return_kind(func.id) == "unordered"
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _DICT_VIEW_METHODS:
                # A project method named keys/values/items with a known
                # ordered return annotation beats the builtin heuristic.
                kind = self.index.return_kind(attr)
                if kind is not None:
                    return kind == "unordered"
                return True
            if attr in _SET_ALGEBRA_METHODS and self.is_unordered(func.value):
                return True
            if attr in {"pop", "get", "setdefault"}:
                # ``mapping.pop(key, set())`` yields whatever the stored
                # value / default is; judge by the default argument.
                if len(node.args) >= 2:
                    return self.is_unordered(node.args[1])
                return False
            return self.index.return_kind(attr) == "unordered"
        return False

    def is_sorted_wrapper(self, node: ast.AST) -> bool:
        """``True`` for ``sorted(...)`` and sorted-preserving wrappers."""
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "sorted":
                return True
            if node.func.id in _TRANSPARENT_WRAPPERS | {"enumerate", "list", "tuple"} and node.args:
                return self.is_sorted_wrapper(node.args[0])
        return False

    # -- float inference -------------------------------------------------------------

    def is_float(self, node: ast.AST) -> bool:
        """Can ``node`` evaluate to a float?"""
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            if node.id in self.float_names:
                return True
            if node.id in self.local_bindings:
                return False
            return self._module_globals.get(node.id) == "float"
        if isinstance(node, ast.Attribute):
            return self.index.field_kind(node.attr) == "float"
        if isinstance(node, ast.UnaryOp):
            return self.is_float(node.operand)
        if isinstance(node, ast.IfExp):
            return self.is_float(node.body) or self.is_float(node.orelse)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self.is_float(node.left) or self.is_float(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id == "float":
                    return True
                if func.id == "round":
                    # One-argument round() returns int; two-argument
                    # round() keeps the float.
                    return len(node.args) >= 2
                if func.id == "sum" and node.args and self.is_float(node.args[0]):
                    return True
                return self.index.return_kind(func.id) == "float"
            if isinstance(func, ast.Attribute):
                return self.index.return_kind(func.attr) == "float"
        return False
