"""A simple execution-pipeline model.

Consensus ordering is only part of a transaction's life: every validator
must also execute the ordered transactions (and in Sui, build checkpoints
and certify effects) before the client receives finality.  That pipeline
is the component whose capacity caps the end-to-end throughput of the
paper's testbed at a few thousand transactions per second — a ceiling that
does not depend on how many validators are alive, which is why HammerHead
shows *no* throughput degradation under crash faults (claim C3) even
though a third of the committee is down.

:class:`ExecutionModel` reproduces this with a single-server queue: ordered
transactions are executed FIFO at ``capacity_tps``; the finality time of a
transaction is the time its execution completes.  Below the ceiling the
queue is empty and execution adds only the per-transaction service time;
as the committed rate approaches the ceiling the queue (and therefore
latency) grows, producing the characteristic knee of the latency/throughput
curves.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.types import SimTime


class ExecutionModel:
    """FIFO execution of ordered transactions at a bounded rate."""

    def __init__(self, capacity_tps: float) -> None:
        if capacity_tps <= 0:
            raise ConfigurationError("execution capacity must be positive")
        self.capacity_tps = capacity_tps
        self.service_time = 1.0 / capacity_tps
        self._busy_until: SimTime = 0.0
        self.executed = 0

    def execute(self, ordered_at: SimTime) -> SimTime:
        """Execute one transaction ordered at ``ordered_at``.

        Returns the completion (finality) time.
        """
        busy_until = self._busy_until
        start = ordered_at if ordered_at > busy_until else busy_until
        finish = start + self.service_time
        self._busy_until = finish
        self.executed += 1
        return finish

    def backlog_delay(self, at_time: SimTime) -> SimTime:
        """Current queueing delay an arriving transaction would experience."""
        return max(0.0, self._busy_until - at_time)
