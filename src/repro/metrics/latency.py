"""Latency sample aggregation (average, standard deviation, percentiles)."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


class LatencyStats:
    """Streaming collection of latency samples with summary statistics."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("latency samples must be non-negative")
        self._samples.append(latency)

    def extend(self, latencies: Sequence[float]) -> None:
        for latency in latencies:
            self.record(latency)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def average(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def stdev(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        mean = self.average()
        variance = sum((sample - mean) ** 2 for sample in self._samples) / (len(self._samples) - 1)
        return math.sqrt(variance)

    def percentile(self, fraction: float) -> float:
        """Linear-interpolated percentile, ``fraction`` in [0, 1]."""
        if not self._samples:
            return 0.0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must lie in [0, 1]")
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        position = fraction * (len(ordered) - 1)
        lower = int(math.floor(position))
        upper = int(math.ceil(position))
        if lower == upper:
            return ordered[lower]
        weight = position - lower
        interpolated = ordered[lower] * (1.0 - weight) + ordered[upper] * weight
        # Clamp to the bracketing samples: with denormal-range values the
        # interpolation arithmetic can round outside the bracket.
        return min(max(interpolated, ordered[lower]), ordered[upper])

    def p50(self) -> float:
        return self.percentile(0.50)

    def p95(self) -> float:
        return self.percentile(0.95)

    def p99(self) -> float:
        return self.percentile(0.99)

    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "avg": self.average(),
            "stdev": self.stdev(),
            "p50": self.p50(),
            "p95": self.p95(),
            "p99": self.p99(),
            "max": self.maximum(),
        }
