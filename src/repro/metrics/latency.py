"""Latency sample aggregation (average, standard deviation, percentiles).

The sorted view of the samples is computed lazily and cached: recording a
sample invalidates the cache, and every percentile query (or a full
``summary()``) reuses the same sorted list instead of re-sorting per
call.  ``summary()`` additionally computes all of its statistics in one
pass over that single sorted view.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


class LatencyStats:
    """Streaming collection of latency samples with summary statistics."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        # Cached ascending view of ``_samples``; ``None`` when stale.
        self._sorted: Optional[List[float]] = None

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("latency samples must be non-negative")
        self._samples.append(latency)
        self._sorted = None

    def extend(self, latencies: Sequence[float]) -> None:
        for latency in latencies:
            self.record(latency)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def _sorted_samples(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def average(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def stdev(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        return self._stdev_given_mean(self.average())

    def _stdev_given_mean(self, mean: float) -> float:
        variance = sum((sample - mean) ** 2 for sample in self._samples) / (len(self._samples) - 1)
        return math.sqrt(variance)

    def percentile(self, fraction: float) -> float:
        """Linear-interpolated percentile, ``fraction`` in [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must lie in [0, 1]")
        if not self._samples:
            return 0.0
        return self._percentile_of(self._sorted_samples(), fraction)

    @staticmethod
    def _percentile_of(ordered: List[float], fraction: float) -> float:
        if len(ordered) == 1:
            return ordered[0]
        position = fraction * (len(ordered) - 1)
        lower = int(math.floor(position))
        upper = int(math.ceil(position))
        if lower == upper:
            return ordered[lower]
        weight = position - lower
        low_value = ordered[lower]
        # ``a + w * (b - a)`` rather than ``a*(1-w) + b*w``: the latter
        # takes two independently rounded products, so a *higher*
        # percentile in the same bracket can round below a lower one
        # (observed with values near 1e6: p95 -> 1000000.0 but
        # p99 -> 999999.9999999999).  The single-product form is
        # monotone in ``weight``, which keeps p50 <= p95 <= p99.
        interpolated = low_value + weight * (ordered[upper] - low_value)
        # Clamp to the bracketing samples: the arithmetic can still round
        # just outside the bracket at the extremes.
        return min(max(interpolated, low_value), ordered[upper])

    def p50(self) -> float:
        return self.percentile(0.50)

    def p95(self) -> float:
        return self.percentile(0.95)

    def p99(self) -> float:
        return self.percentile(0.99)

    def maximum(self) -> float:
        if not self._samples:
            return 0.0
        return self._sorted_samples()[-1]

    def summary(self) -> Dict[str, float]:
        """All summary statistics from a single sorted view of the samples."""
        if not self._samples:
            return {
                "count": 0.0,
                "avg": 0.0,
                "stdev": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
                "max": 0.0,
            }
        ordered = self._sorted_samples()
        mean = sum(ordered) / len(ordered)
        return {
            "count": float(len(ordered)),
            "avg": mean,
            "stdev": self._stdev_given_mean(mean) if len(ordered) >= 2 else 0.0,
            "p50": self._percentile_of(ordered, 0.50),
            "p95": self._percentile_of(ordered, 0.95),
            "p99": self._percentile_of(ordered, 0.99),
            "max": ordered[-1],
        }
