"""Human-readable result reports.

The benchmark harness prints one row per (system, committee size, faults,
load) combination, mirroring the series plotted in Figures 1 and 2 of the
paper.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence


@dataclasses.dataclass
class PerformanceReport:
    """One data point: a single run of one system under one configuration."""

    system: str
    committee_size: int
    faults: int
    input_load_tps: float
    duration: float
    throughput_tps: float
    avg_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    stdev_latency_s: float
    committed_transactions: int
    submitted_transactions: int
    commits: int
    skipped_anchor_rounds: int
    leader_timeouts: int
    schedule_changes: int
    extra: Dict[str, float] = dataclasses.field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data.update(self.extra)
        return data

    def label(self) -> str:
        fault_text = f", {self.faults} faulty" if self.faults else ""
        return f"{self.system} - {self.committee_size} nodes{fault_text}"


_COLUMNS = (
    ("system", "System"),
    ("committee_size", "Nodes"),
    ("faults", "Faults"),
    ("input_load_tps", "Load (tx/s)"),
    ("throughput_tps", "Throughput (tx/s)"),
    ("avg_latency_s", "Avg lat (s)"),
    ("p50_latency_s", "p50 (s)"),
    ("p95_latency_s", "p95 (s)"),
    ("skipped_anchor_rounds", "Skipped"),
    ("schedule_changes", "Sched chg"),
)


def format_table(
    reports: Sequence[PerformanceReport],
    title: Optional[str] = None,
) -> str:
    """Render reports as a fixed-width text table."""
    headers = [header for _, header in _COLUMNS]
    rows: List[List[str]] = []
    for report in reports:
        data = report.as_dict()
        row = []
        for key, _ in _COLUMNS:
            value = data.get(key, "")
            if isinstance(value, float):
                row.append(f"{value:.2f}")
            else:
                row.append(str(value))
        rows.append(row)
    widths = [
        max(len(headers[index]), *(len(row[index]) for row in rows)) if rows else len(headers[index])
        for index in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)))
    return "\n".join(lines)
