"""End-to-end transaction metrics.

Latency is measured the way the paper defines it: "the time elapsed from
when the client submits the transaction to when it receives confirmation
of the transaction's finality".  The collector records the submission time
of every transaction and the first time an observer validator orders it;
the reported latency adds the client confirmation delay (one network
one-way trip back to the client).

Throughput is "the number of distinct transactions over the entire
duration of the run", counted over a measurement window that excludes a
configurable warm-up prefix so that the DAG start-up transient does not
bias results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.consensus.committed import OrderedVertex
from repro.metrics.execution import ExecutionModel
from repro.metrics.latency import LatencyStats
from repro.node.validator import ValidatorNode
from repro.types import SimTime
from repro.workload.transactions import Transaction


class MetricsCollector:
    """Tracks per-transaction submission and commit times."""

    def __init__(
        self,
        confirmation_delay: SimTime = 0.040,
        warmup: SimTime = 0.0,
        execution: Optional[ExecutionModel] = None,
    ) -> None:
        self.confirmation_delay = confirmation_delay
        self.warmup = warmup
        self.execution = execution
        self._submit_times: Dict[int, SimTime] = {}
        self._commit_times: Dict[int, SimTime] = {}
        # (submit_time, finality_time) pairs for transactions submitted
        # after the warm-up period; throughput and latency are derived from
        # these at reporting time.
        self._finality_samples: List[Tuple[SimTime, SimTime]] = []
        self.latency = LatencyStats()
        self.submitted = 0
        self.committed = 0
        self.duplicate_commits = 0
        self._observer: Optional[ValidatorNode] = None

    # -- wiring -----------------------------------------------------------------

    def attach_observer(self, node: ValidatorNode) -> None:
        """Measure commit times at ``node`` (must stay honest and alive)."""
        self._observer = node
        node.on_ordered(self.on_vertex_ordered)

    def on_transaction_submitted(self, transaction: Transaction) -> None:
        """Record a submission (wired as the load generator callback)."""
        self.submitted += 1
        self._submit_times[transaction.tx_id] = transaction.submitted_at

    def on_vertex_ordered(self, record: OrderedVertex) -> None:
        """Record commit times for the transactions of an ordered vertex."""
        # Local bindings: this loop runs once per committed transaction.
        commit_times = self._commit_times
        submit_times = self._submit_times
        execution = self.execution
        confirmation_delay = self.confirmation_delay
        warmup = self.warmup
        ordered_at = record.ordered_at
        samples_append = self._finality_samples.append
        record_latency = self.latency.record
        service_time = execution.service_time if execution is not None else 0.0
        for transaction in record.vertex.block:
            if not isinstance(transaction, Transaction):
                continue
            tx_id = transaction.tx_id
            if tx_id in commit_times:
                self.duplicate_commits += 1
                continue
            submit_time = submit_times.get(tx_id)
            if submit_time is None:
                continue
            commit_time = ordered_at
            if execution is not None:
                # Inlined ExecutionModel.execute (one call per committed
                # transaction): FIFO service at a bounded rate.
                busy_until = execution._busy_until
                start = commit_time if commit_time > busy_until else busy_until
                commit_time = start + service_time
                execution._busy_until = commit_time
                execution.executed += 1
            finality_time = commit_time + confirmation_delay
            commit_times[tx_id] = finality_time
            if submit_time < warmup:
                continue
            self.committed += 1
            samples_append((submit_time, finality_time))
            record_latency(finality_time - submit_time)

    # -- results ------------------------------------------------------------------

    def throughput(self, duration: SimTime) -> float:
        """Transactions per second that reached finality within the run.

        Transactions whose execution completes (virtually) after the end of
        the run are not counted: a saturated execution pipeline must not
        inflate measured throughput beyond its capacity.
        """
        window = duration - self.warmup
        if window <= 0:
            return 0.0
        finalized = sum(1 for _, finality in self._finality_samples if finality <= duration)
        return finalized / window

    def commit_ratio(self) -> float:
        """Fraction of submitted transactions that committed."""
        if self.submitted == 0:
            return 0.0
        return len(self._commit_times) / self.submitted

    def average_latency(self) -> float:
        return self.latency.average()

    def p50_latency(self) -> float:
        return self.latency.p50()

    def p95_latency(self) -> float:
        return self.latency.p95()

    def summary(self, duration: SimTime) -> Dict[str, float]:
        summary = self.latency.summary()
        summary.update(
            {
                "submitted": float(self.submitted),
                "committed": float(self.committed),
                "throughput_tps": self.throughput(duration),
                "commit_ratio": self.commit_ratio(),
            }
        )
        return summary
