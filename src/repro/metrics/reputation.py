"""Reputation-reaction metrics: how fast a scoring rule punishes an adversary.

The paper's qualitative claim is that the reputation schedule routes
around misbehaving validators; these metrics make "how fast" and "how
completely" measurable from an observer's schedule history:

* **trajectory** — the per-epoch reputation scores at every schedule
  change (the raw signal the scoring rule produced);
* **rounds_until_demotion** — per faulty validator, the first schedule
  ``initial_round`` at which it held fewer leader slots than the
  stake-proportional baseline gave it (``None`` if it was never
  demoted);
* **slot shares** — the fraction of leader slots held by the faulty set
  in the initial schedule, in the final schedule, and on average across
  the post-change schedules ("after convergence"): a gaming adversary
  that periodically escapes the demoted set shows up as a retained
  share the naive attacker loses.

Everything derives from the committed prefix (the schedule history and
its change records), so the metrics are identical at every honest
validator, like the schedules themselves.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.types import ValidatorId


def _slot_share(slots: Sequence[ValidatorId], members: frozenset) -> float:
    if not slots:
        return 0.0
    return sum(1 for slot in slots if slot in members) / len(slots)


def reputation_metrics(
    schedule_manager: Any,
    faulty: Sequence[ValidatorId] = (),
) -> Dict[str, Any]:
    """Summarize the reputation reaction recorded by ``schedule_manager``.

    Works for any manager exposing ``history`` (all of them); the
    trajectory additionally uses ``change_records`` when present (the
    HammerHead manager).  The static baseline yields an empty trajectory
    and no demotions, which is itself the measurement: Bullshark never
    reacts.
    """
    history = list(schedule_manager.history)
    records = list(getattr(schedule_manager, "change_records", ()))
    faulty_set = frozenset(faulty)
    base = history[0]
    base_counts = base.slot_counts()

    trajectory: List[Dict[str, Any]] = [
        {
            "epoch": record.epoch,
            "triggered_by_round": record.triggered_by_round,
            "new_initial_round": record.new_initial_round,
            "scores": {int(v): s for v, s in sorted(record.scores.items())},
            "demoted_slots": record.demoted_slots,
        }
        for record in records
    ]

    rounds_until_demotion: Dict[int, Optional[int]] = {}
    demoted_epochs: Dict[int, int] = {}
    for validator in sorted(faulty_set):
        baseline_slots = base_counts.get(validator, 0)
        first_demotion: Optional[int] = None
        epochs_demoted = 0
        for schedule in history[1:]:
            if schedule.slot_counts().get(validator, 0) < baseline_slots:
                epochs_demoted += 1
                if first_demotion is None:
                    first_demotion = schedule.initial_round
        rounds_until_demotion[int(validator)] = first_demotion
        demoted_epochs[int(validator)] = epochs_demoted

    post_change = history[1:]
    post_shares = [_slot_share(schedule.slots, faulty_set) for schedule in post_change]
    return {
        "faulty_validators": sorted(int(v) for v in faulty_set),
        "schedule_changes": len(history) - 1,
        "trajectory": trajectory,
        "rounds_until_demotion": rounds_until_demotion,
        "demoted_epochs": demoted_epochs,
        "faulty_slot_share_initial": round(_slot_share(base.slots, faulty_set), 4),
        "faulty_slot_share_final": round(_slot_share(history[-1].slots, faulty_set), 4),
        "faulty_slot_share_converged": (
            round(sum(post_shares) / len(post_shares), 4) if post_shares else
            round(_slot_share(base.slots, faulty_set), 4)
        ),
    }
