"""Metrics: end-to-end latency, throughput, leader and reputation statistics."""

from repro.metrics.latency import LatencyStats
from repro.metrics.collector import MetricsCollector
from repro.metrics.execution import ExecutionModel
from repro.metrics.leader_stats import LeaderUtilizationStats
from repro.metrics.report import PerformanceReport, format_table
from repro.metrics.reputation import reputation_metrics

__all__ = [
    "LatencyStats",
    "MetricsCollector",
    "ExecutionModel",
    "LeaderUtilizationStats",
    "PerformanceReport",
    "format_table",
    "reputation_metrics",
]
