"""Metrics: end-to-end latency, throughput, and leader statistics."""

from repro.metrics.latency import LatencyStats
from repro.metrics.collector import MetricsCollector
from repro.metrics.execution import ExecutionModel
from repro.metrics.leader_stats import LeaderUtilizationStats
from repro.metrics.report import PerformanceReport, format_table

__all__ = [
    "LatencyStats",
    "MetricsCollector",
    "ExecutionModel",
    "LeaderUtilizationStats",
    "PerformanceReport",
    "format_table",
]
