"""Leader-utilization statistics (Definition 3 / Lemma 6).

These statistics answer: how many anchor rounds produced a commit, how
many were skipped because the scheduled leader failed to gather votes, and
how the skips distribute over leaders.  Lemma 6 bounds the number of
rounds with no committed vertex by O(T)·f in crash-only executions; the
``UTIL`` benchmark checks this bound empirically.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set

from repro.consensus.committed import CommittedSubDag
from repro.types import Round, ValidatorId


@dataclasses.dataclass
class LeaderUtilizationStats:
    """Observed anchor outcomes during one run (from an observer node)."""

    committed_rounds: Set[Round] = dataclasses.field(default_factory=set)
    committed_leaders: Dict[ValidatorId, int] = dataclasses.field(default_factory=dict)
    skipped_rounds: Dict[Round, ValidatorId] = dataclasses.field(default_factory=dict)

    def record_commit(self, subdag: CommittedSubDag) -> None:
        self.committed_rounds.add(subdag.anchor_round)
        leader = subdag.leader
        self.committed_leaders[leader] = self.committed_leaders.get(leader, 0) + 1

    def finalize_skips(self, highest_committed_round: Round, leader_of) -> None:
        """Fill in skipped anchor rounds up to ``highest_committed_round``.

        ``leader_of`` maps an anchor round to its scheduled leader (under
        the observer's schedule history).
        """
        for round_number in range(2, highest_committed_round + 1, 2):
            if round_number not in self.committed_rounds:
                self.skipped_rounds[round_number] = leader_of(round_number)

    # -- derived metrics -----------------------------------------------------------

    @property
    def commits(self) -> int:
        return len(self.committed_rounds)

    @property
    def skips(self) -> int:
        return len(self.skipped_rounds)

    def skip_ratio(self) -> float:
        total = self.commits + self.skips
        if total == 0:
            return 0.0
        return self.skips / total

    def skipped_rounds_per_leader(self) -> Dict[ValidatorId, int]:
        result: Dict[ValidatorId, int] = {}
        for leader in self.skipped_rounds.values():
            result[leader] = result.get(leader, 0) + 1
        return result

    def commits_per_leader(self) -> Dict[ValidatorId, int]:
        return dict(self.committed_leaders)

    def leaders_with_commits(self) -> List[ValidatorId]:
        return sorted(self.committed_leaders)
