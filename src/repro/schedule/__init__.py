"""Leader schedules: who is the leader (anchor) of each round."""

from repro.schedule.base import LeaderSchedule
from repro.schedule.round_robin import initial_schedule, round_robin_slots, stake_weighted_slots

__all__ = [
    "LeaderSchedule",
    "initial_schedule",
    "round_robin_slots",
    "stake_weighted_slots",
]
