"""The leader schedule data structure.

A schedule assigns a leader to every anchor round starting from its
``initial_round``.  It is defined by an ordered cycle of slots; the leader
of anchor round ``r`` is the slot at position ``(r - initial_round) / 2``
modulo the cycle length.  HammerHead replaces slots of low-reputation
validators with slots of high-reputation ones; the underlying structure is
unchanged, which is what lets every validator derive the same schedule
from the same committed prefix.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, Tuple

from repro.errors import ScheduleError
from repro.types import Round, ValidatorId, is_anchor_round
from repro.types import next_anchor_round as _next_anchor_round


@dataclasses.dataclass(frozen=True)
class LeaderSchedule:
    """An immutable leader schedule (``activeSchedule`` in Algorithm 1)."""

    epoch: int
    initial_round: Round
    slots: Tuple[ValidatorId, ...]

    def canonical_fields(self) -> Tuple[object, ...]:
        """Fields participating in canonical digests (state-sync snapshots).

        Slots are an ordered cycle, so they are hashed in slot order —
        permutations of the same multiset are *different* schedules.
        """
        return (self.epoch, self.initial_round, self.slots)

    def __post_init__(self) -> None:
        if not self.slots:
            raise ScheduleError("a schedule needs at least one leader slot")
        if self.initial_round < 0:
            raise ScheduleError("initial_round must be non-negative")
        if self.initial_round % 2 != 0:
            raise ScheduleError("schedules start on an anchor (even) round")
        if self.epoch < 0:
            raise ScheduleError("epoch numbers are non-negative")

    # -- leader lookup -----------------------------------------------------------

    def leader_for_round(self, round_number: Round) -> ValidatorId:
        """Return the leader of anchor round ``round_number``.

        This is the ``getLeader(r, activeSchedule)`` function of
        Algorithm 1: a public deterministic function of the round and the
        schedule.
        """
        if not is_anchor_round(round_number):
            raise ScheduleError(f"round {round_number} is not an anchor round")
        if round_number < self.initial_round:
            raise ScheduleError(
                f"round {round_number} predates this schedule (starts at {self.initial_round})"
            )
        index = ((round_number - self.initial_round) // 2) % len(self.slots)
        return self.slots[index]

    def covers(self, round_number: Round) -> bool:
        """``True`` when the schedule assigns a leader to ``round_number``."""
        return is_anchor_round(round_number) and round_number >= self.initial_round

    def next_anchor_round(self, round_number: Round) -> Round:
        """The first anchor round at or after ``round_number`` this schedule covers."""
        return max(_next_anchor_round(round_number), self.initial_round)

    def upcoming_leaders(self, round_number: Round, count: int = 1) -> Tuple[ValidatorId, ...]:
        """Leaders of the next ``count`` anchor rounds at or after ``round_number``.

        Duplicates are preserved (a validator holding consecutive slots
        appears once per slot).  This is the lookup the schedule-adaptive
        adversaries use to re-aim at whoever the *current* schedule is
        about to make a leader.
        """
        if count <= 0:
            return ()
        start = self.next_anchor_round(round_number)
        return tuple(self.leader_for_round(start + 2 * index) for index in range(count))

    # -- slot accounting ------------------------------------------------------------

    def slot_counts(self) -> Dict[ValidatorId, int]:
        """Number of slots each validator holds in one rotation cycle."""
        return dict(Counter(self.slots))

    def slots_of(self, validator: ValidatorId) -> int:
        return self.slot_counts().get(validator, 0)

    def leaders(self) -> Tuple[ValidatorId, ...]:
        """Distinct validators holding at least one slot, in slot order."""
        seen = []
        for slot in self.slots:
            if slot not in seen:
                seen.append(slot)
        return tuple(seen)

    def with_slots(self, slots: Tuple[ValidatorId, ...], initial_round: Round, epoch: int) -> "LeaderSchedule":
        """Derive a successor schedule with new slots and starting round."""
        return LeaderSchedule(epoch=epoch, initial_round=initial_round, slots=slots)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"LeaderSchedule(epoch={self.epoch}, start={self.initial_round}, "
            f"slots={list(self.slots)})"
        )
