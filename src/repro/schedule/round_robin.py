"""Construction of initial leader schedules.

The paper initializes the schedule "by randomly permuting all validators
based on their stake": each validator receives a number of slots
proportional to its stake and the slot sequence is then permuted with a
seed all validators share (for example derived from the previous epoch's
randomness).  With equal stake this degenerates to the classic round-robin
rotation that baseline Bullshark uses.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.committee import Committee
from repro.errors import ScheduleError
from repro.schedule.base import LeaderSchedule
from repro.types import Round, ValidatorId


def round_robin_slots(committee: Committee) -> Tuple[ValidatorId, ...]:
    """One slot per validator, in index order (the Bullshark baseline)."""
    return tuple(committee.validators)


def stake_weighted_slots(
    committee: Committee,
    cycle_length: int = 0,
) -> Tuple[ValidatorId, ...]:
    """Slots proportional to stake.

    ``cycle_length`` bounds the rotation length; when zero, the cycle
    assigns one slot per unit of stake (scaled down by the greatest common
    divisor of the stakes when possible so cycles stay short).
    """
    stakes = [committee.stake_of(validator) for validator in committee.validators]
    if cycle_length <= 0:
        divisor = _gcd_of(stakes)
        slot_counts = [stake // divisor for stake in stakes]
    else:
        total = sum(stakes)
        slot_counts = [max(1, round(cycle_length * stake / total)) for stake in stakes]
    slots: List[ValidatorId] = []
    for validator, count in zip(committee.validators, slot_counts):
        slots.extend([validator] * count)
    if not slots:
        raise ScheduleError("stake-weighted slot assignment produced no slots")
    return tuple(slots)


def initial_schedule(
    committee: Committee,
    seed: int = 0,
    initial_round: Round = 2,
    stake_weighted: bool = True,
    permute: bool = True,
) -> LeaderSchedule:
    """Build the unbiased initial schedule ``S0`` of an epoch.

    ``initial_round`` is the first anchor round the schedule covers
    (round 2 is the first anchor round of a fresh DAG).
    """
    if stake_weighted:
        slots = list(stake_weighted_slots(committee))
    else:
        slots = list(round_robin_slots(committee))
    if permute:
        rng = random.Random(seed)
        rng.shuffle(slots)
    return LeaderSchedule(epoch=0, initial_round=initial_round, slots=tuple(slots))


def _gcd_of(values: List[int]) -> int:
    result = 0
    for value in values:
        result = _gcd(result, value)
    return max(1, result)


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
