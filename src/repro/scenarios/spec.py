"""Declarative scenario specifications.

A :class:`ScenarioSpec` describes a complete adversarial/network scenario
— committee and load presets, a phased timeline of fault injections,
network disturbances, and a workload shape — independent of the
simulator objects that enact it.  Specs serialize to and from plain-JSON
dictionaries (with schema validation on the way in), and hash to a
deterministic :meth:`ScenarioSpec.scenario_digest` so that experiment
artifacts can state precisely *which* scenario produced them.

The compiler (:func:`compile_spec`) lowers a spec into the existing
experiment layer: one :class:`~repro.sim.experiment.ExperimentConfig` per
(committee size, protocol, load) point, with fault timelines materialized
as :class:`~repro.faults.base.FaultPlan` objects.  Compilation is exactly
faithful to the hand-written configurations the ``examples/`` scripts
used before the scenario engine existed — the test suite pins this — so
a scenario run reproduces those reports byte for byte.
"""

from __future__ import annotations

import dataclasses
import json
from functools import partial
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.behavior.adversarial import (
    EquivocationPolicy,
    LazyLeaderPolicy,
    ReputationGamingPolicy,
    SilentFanoutPolicy,
)
from repro.behavior.coordination import (
    AdaptiveEquivocationPolicy,
    AdaptiveSilentFanoutPolicy,
    CoalitionGamingPolicy,
    ColludingSilencePolicy,
)
from repro.core.scoring import scoring_rule_names
from repro.committee import Committee, equal_stake, geometric_stake, zipfian_stake
from repro.crypto.hashing import digest_hex
from repro.errors import ConfigurationError
from repro.faults.base import FaultPlan, head_validators, tail_validators
from repro.faults.behavior import BehaviorFault, validate_behavior_windows
from repro.faults.byzantine import VoteWithholdingFault
from repro.faults.crash import CrashFault, CrashRecoveryFault
from repro.faults.partition import (
    NetworkDisturbanceFault,
    PartitionPlan,
    isolate_tail_fraction,
)
from repro.faults.slow import SlowValidatorFault, degrade_fraction
from repro.sim.experiment import ExperimentConfig, PROTOCOL_BULLSHARK, PROTOCOL_HAMMERHEAD
from repro.workload.phases import (
    average_tps,
    burst_phases,
    diurnal_phases,
    ramp_phases,
    validate_phases,
)

# Coalition fault kinds: the selected validators share one
# AdversaryCoordinator per fault window (colluding attacks).
COALITION_FAULT_KINDS = (
    "colluding-silence",
    "adaptive-dos",
    "coalition-gaming",
)
# Behavior-policy fault kinds (compiled to BehaviorFault plans installing
# the matching repro.behavior policy on a timeline).
BEHAVIOR_FAULT_KINDS = (
    "equivocate",
    "silent-fanout",
    "lazy-leader",
    "reputation-gaming",
    "adaptive-equivocation",
) + COALITION_FAULT_KINDS
# Fault kinds understood by the timeline.
FAULT_KINDS = (
    "crash",
    "crash-recovery",
    "slow",
    "vote-withholding",
) + BEHAVIOR_FAULT_KINDS
# Workload shapes understood by the compiler.
WORKLOAD_KINDS = ("constant", "burst", "ramp", "diurnal")

# Version tag embedded in serialized specs; bump on incompatible changes.
SPEC_VERSION = 1


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _is_int(value: Any) -> bool:
    """A true integer — JSON ``true``/``false`` must not pass as 1/0."""
    return isinstance(value, int) and not isinstance(value, bool)


# A timeline instant: either an absolute number of seconds, or a small
# committee-size-relative expression ``{"base": b, "per_validator": p}``
# resolved to ``b + p * committee_size`` per sweep point at compile time
# (the per-point scenario axes of the roadmap, minimal form).
TimeExpr = Union[int, float, Mapping]

_TIME_EXPR_KEYS = frozenset(("base", "per_validator"))


def _validate_time(value: Optional[TimeExpr], field: str) -> None:
    if value is None:
        return
    if isinstance(value, Mapping):
        unknown = set(value) - _TIME_EXPR_KEYS
        _require(not unknown, f"unknown {field!r} expression keys: {sorted(unknown)}")
        _require(bool(value), f"a {field!r} expression needs base and/or per_validator")
        for _key, entry in value.items():
            _require(
                isinstance(entry, (int, float)) and not isinstance(entry, bool),
                f"{field!r} expression values must be numbers",
            )
            _require(entry >= 0.0, f"{field!r} expression values must be non-negative")
        return
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{field!r} must be a number or a time expression",
    )
    _require(value >= 0.0, f"{field!r} must be non-negative")


def resolve_time(value: Optional[TimeExpr], committee_size: int) -> Optional[float]:
    """Resolve a :data:`TimeExpr` against a concrete committee size."""
    if value is None:
        return None
    if isinstance(value, Mapping):
        return float(value.get("base", 0.0)) + float(
            value.get("per_validator", 0.0)
        ) * committee_size
    return float(value)


def _shift_time(value: Optional[TimeExpr], offset: float) -> Optional[TimeExpr]:
    """Shift a :data:`TimeExpr` later by ``offset`` seconds (for ``then``)."""
    if value is None:
        return None
    if isinstance(value, Mapping):
        shifted = dict(value)
        shifted["base"] = float(shifted.get("base", 0.0)) + offset
        return shifted
    return round(float(value) + offset, 6)


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault-injection entry on the scenario timeline.

    The affected validators are chosen by exactly one selector:

    * ``validators`` — explicit ids;
    * ``count`` — the ``count`` highest-indexed validators (benchmarking
      convention, observer protected);
    * ``fraction`` — like ``count`` but as a committee fraction;
    * ``max_faulty`` — the maximum tolerable ``f``.

    Timeline instants (``at``, ``recover_at``, ``end``) accept either
    absolute seconds or a committee-size-relative expression
    ``{"base": b, "per_validator": p}`` resolved per sweep point.

    The targeted behavior kinds (``equivocate``, ``silent-fanout``,
    ``colluding-silence``) pick their *victims* with ``targets`` (explicit
    ids) or ``target_count`` (the lowest-indexed non-observer validators —
    the mirror of the attacker tail convention); ``window`` is the
    honest-round window of ``reputation-gaming``, and ``extra_delay``
    doubles as the ``lazy-leader`` proposal delay.

    The coalition kinds (``colluding-silence``, ``adaptive-dos``,
    ``coalition-gaming``) may name their members explicitly with the
    ``coalition`` selector (counts as the one selector) or fall back to
    the tail convention like any other fault; either way the members
    share one deterministic :class:`AdversaryCoordinator` per fault
    window.  ``stride`` throttles the coalition's duty rotation (attack
    one in every ``len(coalition) * stride`` anchors).
    """

    kind: str
    validators: Tuple[int, ...] = ()
    count: Optional[int] = None
    fraction: Optional[float] = None
    max_faulty: bool = False
    at: TimeExpr = 0.0
    recover_at: Optional[TimeExpr] = None  # crash-recovery only
    extra_delay: float = 0.5  # slow and lazy-leader
    end: Optional[TimeExpr] = None  # slow and behavior kinds
    targets: Tuple[int, ...] = ()  # equivocate / silent-fanout victims
    target_count: Optional[int] = None  # like targets, head-of-committee
    window: Optional[int] = None  # reputation-gaming only
    coalition: Tuple[int, ...] = ()  # coalition kinds: explicit members
    stride: Optional[int] = None  # coalition kinds: duty rotation throttle

    def validate(self) -> "FaultSpec":
        _require(self.kind in FAULT_KINDS, f"unknown fault kind {self.kind!r}")
        behavior = self.kind in BEHAVIOR_FAULT_KINDS
        coalition_kind = self.kind in COALITION_FAULT_KINDS
        if self.coalition:
            _require(
                coalition_kind,
                f"{self.kind!r} does not take a coalition selector "
                f"(coalition kinds: {', '.join(COALITION_FAULT_KINDS)})",
            )
            for member in self.coalition:
                _require(_is_int(member), "coalition members must be validator ids (integers)")
            _require(
                len(set(self.coalition)) == len(self.coalition),
                "coalition members must be distinct",
            )
        if self.stride is not None:
            _require(coalition_kind, f"{self.kind!r} does not take a stride")
            _require(_is_int(self.stride), "the duty stride must be an integer")
            _require(self.stride >= 1, "the duty stride must be at least 1")
        selectors = [
            bool(self.validators),
            self.count is not None,
            self.fraction is not None,
            self.max_faulty,
            bool(self.coalition),
        ]
        _require(
            sum(selectors) == 1,
            f"fault {self.kind!r} needs exactly one selector "
            "(validators, count, fraction, max_faulty"
            + (", or coalition)" if coalition_kind else ")"),
        )
        if self.count is not None:
            _require(self.count >= 1, "a fault count must be at least 1")
        if self.fraction is not None:
            _require(0.0 < self.fraction <= 1.0, "a fault fraction must lie in (0, 1]")
        _validate_time(self.at, "at")
        if self.kind == "crash-recovery":
            _require(
                self.recover_at is not None,
                "crash-recovery needs recover_at after the crash time",
            )
            _validate_time(self.recover_at, "recover_at")
            if not isinstance(self.at, Mapping) and not isinstance(self.recover_at, Mapping):
                _require(
                    self.recover_at > self.at,
                    "crash-recovery needs recover_at after the crash time",
                )
        else:
            _require(self.recover_at is None, f"{self.kind!r} does not take recover_at")
        if self.kind in ("slow", "lazy-leader"):
            _require(
                self.extra_delay > 0.0, f"a {self.kind} fault needs a positive extra delay"
            )
        if self.kind == "slow" or behavior:
            _validate_time(self.end, "end")
            if (
                self.end is not None
                and not isinstance(self.end, Mapping)
                and not isinstance(self.at, Mapping)
            ):
                _require(self.end > self.at, "a fault window must close after it opens")
        else:
            _require(self.end is None, f"{self.kind!r} does not take an end time")
        if self.kind in ("equivocate", "silent-fanout", "colluding-silence"):
            _require(
                not (self.targets and self.target_count is not None),
                f"{self.kind!r} takes targets or target_count, not both",
            )
            for target in self.targets:
                _require(_is_int(target), "targets must be validator ids (integers)")
            if self.target_count is not None:
                _require(_is_int(self.target_count), "target_count must be an integer")
                _require(self.target_count >= 1, "target_count must be at least 1")
        else:
            _require(
                not self.targets and self.target_count is None,
                f"{self.kind!r} does not take targets",
            )
        if self.kind == "reputation-gaming":
            if self.window is not None:
                _require(_is_int(self.window), "the honest window must be an integer")
                _require(self.window >= 0, "the honest window must be non-negative")
        else:
            _require(self.window is None, f"{self.kind!r} does not take a window")
        return self


@dataclasses.dataclass(frozen=True)
class PartitionSpec:
    """A network partition window.

    Either explicit ``groups`` or ``isolate_fraction`` (cut the tail
    fraction of the committee off as a minority group).
    """

    groups: Tuple[Tuple[int, ...], ...] = ()
    isolate_fraction: Optional[float] = None
    start: float = 0.0
    end: Optional[float] = None

    def validate(self) -> "PartitionSpec":
        _require(
            bool(self.groups) != (self.isolate_fraction is not None),
            "a partition needs exactly one of groups or isolate_fraction",
        )
        if self.isolate_fraction is not None:
            _require(
                0.0 < self.isolate_fraction < 1.0,
                "isolate_fraction must lie in (0, 1)",
            )
        _require(self.start >= 0.0, "partition times must be non-negative")
        if self.end is not None:
            _require(self.end > self.start, "a partition must heal after it forms")
        return self


@dataclasses.dataclass(frozen=True)
class DisturbanceSpec:
    """A fabric-wide jitter and/or loss window."""

    jitter: float = 0.0
    loss_rate: float = 0.0
    start: float = 0.0
    end: Optional[float] = None

    def validate(self) -> "DisturbanceSpec":
        _require(self.jitter >= 0.0, "jitter must be non-negative")
        _require(0.0 <= self.loss_rate < 1.0, "the loss rate must lie in [0, 1)")
        _require(
            self.jitter > 0.0 or self.loss_rate > 0.0,
            "a disturbance needs jitter, loss, or both",
        )
        _require(self.start >= 0.0, "disturbance times must be non-negative")
        if self.end is not None:
            _require(self.end > self.start, "a disturbance window must close after it opens")
        return self


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """The shape of client load over the run.

    ``constant`` compiles to the classic fixed-rate path; the other kinds
    compile to piecewise-constant :class:`~repro.workload.phases.LoadPhase`
    profiles starting at ``LOAD_START`` (the same 0.5 s client warm-up the
    fixed-rate path uses).
    """

    kind: str = "constant"
    tps: float = 1000.0
    # burst
    burst_tps: float = 0.0
    burst_start: float = 0.0
    burst_end: float = 0.0
    # ramp
    end_tps: float = 0.0
    steps: int = 4
    # diurnal
    amplitude: float = 0.0
    period: float = 0.0

    def validate(self) -> "WorkloadSpec":
        _require(self.kind in WORKLOAD_KINDS, f"unknown workload kind {self.kind!r}")
        _require(self.tps >= 0.0, "the workload rate must be non-negative")
        if self.kind == "burst":
            _require(self.burst_tps > 0.0, "a burst needs a positive burst rate")
            _require(
                self.burst_end > self.burst_start >= 0.0,
                "a burst window must close after it opens",
            )
        if self.kind == "ramp":
            _require(self.steps >= 1, "a ramp needs at least one step")
        if self.kind == "diurnal":
            _require(self.period > 0.0, "a diurnal profile needs a positive period")
            _require(self.steps >= 1, "a diurnal profile needs at least one step")
        return self


# Client load starts 0.5 s into the run, matching the constant-rate path.
LOAD_START = 0.5


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """Full declarative description of one scenario.

    A scenario fans out over ``committee_sizes`` x ``protocols`` x
    ``loads`` (each point one :class:`ExperimentConfig`); the fault
    timeline, partitions, disturbances, and workload shape apply to every
    point.  When ``loads`` is empty the workload spec's nominal rate is
    the single load point.
    """

    name: str
    description: str = ""
    protocols: Tuple[str, ...] = (PROTOCOL_HAMMERHEAD,)
    committee_sizes: Tuple[int, ...] = (10,)
    loads: Tuple[float, ...] = ()
    workload: WorkloadSpec = WorkloadSpec()
    duration: float = 30.0
    warmup: float = 5.0
    seed: int = 1
    stake: str = "equal"
    commits_per_schedule: int = 10
    scoring: str = "hammerhead"
    # The scoring-rule sweep axis: when non-empty, the scenario fans out
    # over these rules (each compiled point carries one) instead of the
    # single ``scoring`` value — the axis the attack x rule ablation
    # matrix sweeps.  Empty keeps the spec's canonical form (and digest)
    # identical to earlier revisions.
    scoring_rules: Tuple[str, ...] = ()
    latency_model: str = "geo"
    gst: float = 0.0
    delta: float = 2.0
    faults: Tuple[FaultSpec, ...] = ()
    partitions: Tuple[PartitionSpec, ...] = ()
    disturbances: Tuple[DisturbanceSpec, ...] = ()
    # Clients fail over away from minority-side validators while a
    # partition window is open (see SimulationRunner).  Off by default:
    # failover changes submission patterns, so the historical partition
    # scenario digests only hold with the flag off.
    partition_failover: bool = False
    # Relay recently collected certificates on every propose fan-out so
    # a certificate lost to a loss window heals passively instead of
    # waiting for a fetch round-trip (see repro.rbc.certified).  Off by
    # default; loss-free runs are byte-identical either way.
    certificate_piggyback: bool = False

    # -- validation -----------------------------------------------------------

    def validate(self) -> "ScenarioSpec":
        _require(bool(self.name), "a scenario needs a name")
        _require(bool(self.protocols), "a scenario needs at least one protocol")
        for protocol in self.protocols:
            _require(
                protocol in (PROTOCOL_HAMMERHEAD, PROTOCOL_BULLSHARK),
                f"unknown protocol {protocol!r}",
            )
        _require(bool(self.committee_sizes), "a scenario needs at least one committee size")
        for size in self.committee_sizes:
            _require(size >= 1, "committee sizes must be positive")
        for load in self.loads:
            _require(load >= 0.0, "loads must be non-negative")
        self.workload.validate()
        _require(self.duration > 0.0, "the duration must be positive")
        _require(0.0 <= self.warmup < self.duration, "warmup must lie within the duration")
        if self.workload.kind == "burst":
            # The load window is [LOAD_START, duration]; a burst outside it
            # would fail only at compile time otherwise.
            _require(
                LOAD_START <= self.workload.burst_start
                and self.workload.burst_end <= self.duration,
                f"the burst window must lie within [{LOAD_START}s, duration]",
            )
        _require(
            self.scoring in scoring_rule_names(),
            f"unknown scoring rule {self.scoring!r} "
            f"(known: {', '.join(scoring_rule_names())})",
        )
        for rule in self.scoring_rules:
            _require(
                rule in scoring_rule_names(),
                f"unknown scoring rule {rule!r} in scoring_rules "
                f"(known: {', '.join(scoring_rule_names())})",
            )
        _require(
            len(set(self.scoring_rules)) == len(self.scoring_rules),
            "scoring_rules must not repeat a rule",
        )
        tail_crashes = 0
        for fault in self.faults:
            fault.validate()
            if fault.kind == "crash" and not fault.validators:
                tail_crashes += 1
        self._validate_behavior_windows()
        _require(
            tail_crashes <= 1,
            "at most one permanent crash fault may use a tail selector (count/"
            "fraction/max_faulty); give later waves explicit validators",
        )
        for partition in self.partitions:
            partition.validate()
        # Partition windows must not overlap: the network holds a single
        # partition at a time (last-wins), so overlapping windows would
        # silently enact a different adversary than the spec describes.
        # Disturbance windows may overlap freely — they stack.
        partition_windows = sorted(
            (partition.start, partition.end) for partition in self.partitions
        )
        for (_, first_end), (second_start, _) in zip(
            partition_windows, partition_windows[1:]
        ):
            _require(
                first_end is not None and first_end <= second_start,
                "partition windows must not overlap",
            )
        for disturbance in self.disturbances:
            disturbance.validate()
        # The ExperimentConfig validator re-checks the per-point fields
        # (stake, scoring, seed range, fault bounds) at compile time.
        return self

    def _validate_behavior_windows(self) -> None:
        """Best-effort overlap rejection at spec level.

        Two behavior windows on the same validator must not truly overlap
        (abutting is fine): the later install would silently win while
        both are open.  At spec level only plain-number times can be
        compared and only explicit selections (``validators``/
        ``coalition``) or two tail-convention selectors are provably
        shared; everything else is re-checked exactly at compile time,
        once selectors and committee-relative times are resolved
        (:func:`compile_spec`).
        """
        entries = []
        for index, fault in enumerate(self.faults):
            if fault.kind not in BEHAVIOR_FAULT_KINDS:
                continue
            if isinstance(fault.at, Mapping) or isinstance(fault.end, Mapping):
                continue
            members = tuple(fault.coalition or fault.validators)
            entries.append(
                (
                    bool(members),
                    frozenset(members),
                    float(fault.at),
                    None if fault.end is None else float(fault.end),
                    f"faults[{index}] ({fault.kind})",
                )
            )
        for position, (explicit_a, members_a, start_a, end_a, label_a) in enumerate(entries):
            for explicit_b, members_b, start_b, end_b, label_b in entries[position + 1 :]:
                if explicit_a and explicit_b:
                    shared = members_a & members_b
                    if not shared:
                        continue
                elif explicit_a != explicit_b:
                    # One explicit, one selector-based: membership is only
                    # known per committee size — compile re-checks.
                    continue
                # Both tail-convention selectors always share the tail.
                a_end = float("inf") if end_a is None else end_a
                b_end = float("inf") if end_b is None else end_b
                _require(
                    not (start_a < b_end and start_b < a_end),
                    f"behavior windows {label_a} and {label_b} overlap on the "
                    "same validators; windows on a shared validator must not "
                    "overlap (abutting is allowed)",
                )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON dictionary form (tuples become lists).

        Fields introduced after spec version 1 shipped are omitted at
        their default values: the canonical form (and therefore
        :meth:`scenario_digest`) of a spec that does not use them is
        identical to what earlier revisions produced, so previously
        recorded scenario digests remain valid.
        """
        data = dataclasses.asdict(self)
        data["version"] = SPEC_VERSION
        if not data["partition_failover"]:
            del data["partition_failover"]
        if not data["certificate_piggyback"]:
            del data["certificate_piggyback"]
        if not data["scoring_rules"]:
            del data["scoring_rules"]
        for fault in data["faults"]:
            if not fault["targets"]:
                del fault["targets"]
            if fault["target_count"] is None:
                del fault["target_count"]
            if fault["window"] is None:
                del fault["window"]
            if not fault["coalition"]:
                del fault["coalition"]
            if fault["stride"] is None:
                del fault["stride"]
        return json.loads(json.dumps(data))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Parse and validate a dictionary produced by :meth:`to_dict`.

        Unknown keys, wrong field types, and semantic violations all
        raise :class:`~repro.errors.ConfigurationError`.
        """
        _require(isinstance(data, Mapping), "a scenario spec must be a JSON object")
        payload = dict(data)
        version = payload.pop("version", SPEC_VERSION)
        _require(
            version == SPEC_VERSION,
            f"unsupported scenario spec version {version!r} (expected {SPEC_VERSION})",
        )
        spec = cls(
            name=_parse_scalar(payload, "name", str, required=True),
            description=_parse_scalar(payload, "description", str, default=""),
            protocols=_parse_tuple(payload, "protocols", str, default=(PROTOCOL_HAMMERHEAD,)),
            committee_sizes=_parse_tuple(payload, "committee_sizes", int, default=(10,)),
            loads=_parse_tuple(payload, "loads", (int, float), default=(), cast=float),
            workload=_parse_nested(payload, "workload", WorkloadSpec),
            duration=_parse_scalar(payload, "duration", (int, float), default=30.0, cast=float),
            warmup=_parse_scalar(payload, "warmup", (int, float), default=5.0, cast=float),
            seed=_parse_scalar(payload, "seed", int, default=1),
            stake=_parse_scalar(payload, "stake", str, default="equal"),
            commits_per_schedule=_parse_scalar(payload, "commits_per_schedule", int, default=10),
            scoring=_parse_scalar(payload, "scoring", str, default="hammerhead"),
            scoring_rules=_parse_tuple(payload, "scoring_rules", str, default=()),
            latency_model=_parse_scalar(payload, "latency_model", str, default="geo"),
            gst=_parse_scalar(payload, "gst", (int, float), default=0.0, cast=float),
            delta=_parse_scalar(payload, "delta", (int, float), default=2.0, cast=float),
            faults=_parse_nested_tuple(payload, "faults", FaultSpec),
            partitions=_parse_nested_tuple(payload, "partitions", PartitionSpec),
            disturbances=_parse_nested_tuple(payload, "disturbances", DisturbanceSpec),
            partition_failover=_parse_scalar(
                payload, "partition_failover", bool, default=False
            ),
            certificate_piggyback=_parse_scalar(
                payload, "certificate_piggyback", bool, default=False
            ),
        )
        _require(not payload, f"unknown scenario spec keys: {sorted(payload)}")
        return spec.validate()

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid scenario JSON: {error}") from None
        return cls.from_dict(data)

    # -- identity -------------------------------------------------------------

    def scenario_digest(self) -> str:
        """Deterministic content digest of the spec.

        Computed over the canonical serialization of the dictionary form,
        so structurally equal specs always hash identically regardless of
        construction order or process.
        """
        return digest_hex("scenario-spec", self.to_dict())

    # -- derivation -----------------------------------------------------------

    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """Copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes).validate()

    def without_faults(self) -> "ScenarioSpec":
        """The healthy twin: same run, empty fault/disturbance timelines."""
        return self.with_overrides(faults=(), partitions=(), disturbances=())

    # -- composition ----------------------------------------------------------

    def then(self, other: "ScenarioSpec", gap: float = 0.0) -> "ScenarioSpec":
        """Concatenate ``other`` after this scenario, ``gap`` quiet seconds apart.

        The result runs this scenario's timeline first, then — shifted by
        ``duration + gap`` — the other's faults, partitions, and
        disturbances ("churn, then partition, then spike").  The two
        specs must agree on every per-point axis (protocols, committees,
        loads, seed, stake, scoring, latency); workloads combine when
        they share a base rate (two matching constants, or one burst over
        the shared base — a spec layer cannot splice two distinct burst
        windows into one profile).  The combination is an ordinary
        validated spec: it serializes, digests, and smokes like any
        other.
        """
        _require(gap >= 0.0, "the gap between combined scenarios must be non-negative")
        for field in (
            "protocols",
            "committee_sizes",
            "loads",
            "seed",
            "stake",
            "commits_per_schedule",
            "scoring",
            "scoring_rules",
            "latency_model",
            "gst",
            "delta",
            "partition_failover",
            "certificate_piggyback",
        ):
            _require(
                getattr(self, field) == getattr(other, field),
                f"combined scenarios must agree on {field!r}",
            )
        offset = self.duration + gap
        shifted_faults = tuple(
            dataclasses.replace(
                fault,
                at=_shift_time(fault.at, offset),
                recover_at=_shift_time(fault.recover_at, offset),
                end=_shift_time(fault.end, offset),
            )
            for fault in other.faults
        )
        shifted_partitions = tuple(
            dataclasses.replace(
                p,
                start=round(p.start + offset, 6),
                end=None if p.end is None else round(p.end + offset, 6),
            )
            for p in other.partitions
        )
        shifted_disturbances = tuple(
            dataclasses.replace(
                d,
                start=round(d.start + offset, 6),
                end=None if d.end is None else round(d.end + offset, 6),
            )
            for d in other.disturbances
        )
        return self.with_overrides(
            name=f"{self.name}+{other.name}",
            description=f"{self.description} — then — {other.description}".strip(" —"),
            duration=self.duration + gap + other.duration,
            workload=self._combine_workload(other, offset),
            faults=self.faults + shifted_faults,
            partitions=self.partitions + shifted_partitions,
            disturbances=self.disturbances + shifted_disturbances,
        )

    def _combine_workload(self, other: "ScenarioSpec", offset: float) -> WorkloadSpec:
        first, second = self.workload, other.workload
        if first.kind == "constant" and second.kind == "constant":
            _require(
                first.tps == second.tps,
                "combined constant workloads must share one rate "
                f"({first.tps} vs {second.tps})",
            )
            return first
        if first.kind == "constant" and second.kind == "burst":
            _require(
                second.tps == first.tps,
                "a burst joined after a constant workload must share its base rate",
            )
            return dataclasses.replace(
                second,
                burst_start=round(second.burst_start + offset, 6),
                burst_end=round(second.burst_end + offset, 6),
            )
        if first.kind == "burst" and second.kind == "constant":
            _require(
                second.tps == first.tps,
                "a constant workload joined after a burst must share its base rate",
            )
            return first
        raise ConfigurationError(
            "combined scenarios support matching constant workloads or a single "
            f"burst over a shared base rate (got {first.kind!r} then {second.kind!r})"
        )

    def smoke(self) -> "ScenarioSpec":
        """A tiny-committee, short-horizon variant for CI smoke runs.

        Committee sizes shrink to 4 (1 tolerable fault), the horizon to at
        most 15 s, and loads are capped; explicit validator lists are
        remapped onto distinct members of the shrunk committee (never the
        observer), and only the first *permanent* crash survives — a
        4-member committee cannot lose two validators forever and keep a
        quorum.  Best-effort: the smoke variant preserves the *kind* of
        adversity, not its magnitude.
        """
        duration = min(self.duration, 15.0)
        scale = duration / self.duration
        smoke_committee = 4

        def scaled(time: float) -> float:
            return round(time * scale, 3)

        def scaled_time(value: Optional[TimeExpr]) -> Optional[float]:
            # Committee-relative expressions are resolved against the
            # smoke committee before scaling (the smoke variant has one
            # concrete committee size, so nothing is lost).
            if value is None:
                return None
            return round(resolve_time(value, smoke_committee) * scale, 3)

        # Distinct stand-in validators for explicit selections (committee
        # of 4, observer 0 protected).
        smoke_ids = (3, 2, 1)
        next_smoke_id = 0
        faults = []
        seen_permanent_crash = False
        for fault in self.faults:
            if fault.kind == "crash":
                if seen_permanent_crash:
                    continue
                seen_permanent_crash = True
            changes: Dict[str, Any] = {
                "at": scaled_time(fault.at),
                "recover_at": scaled_time(fault.recover_at),
                "end": scaled_time(fault.end),
            }
            if fault.validators:
                changes["validators"] = (smoke_ids[next_smoke_id % len(smoke_ids)],)
                next_smoke_id += 1
            if fault.count is not None:
                changes["count"] = 1
            if fault.coalition:
                # A coalition shrinks to two distinct members so the
                # coordination channel is still exercised at smoke scale.
                changes["coalition"] = (3, 2)
            if fault.kind in ("equivocate", "silent-fanout", "colluding-silence"):
                # Victim selections shrink to one head victim; explicit
                # ids may not exist in the 4-member committee.
                changes["targets"] = ()
                changes["target_count"] = 1
            faults.append(dataclasses.replace(fault, **changes))
        partitions = tuple(
            dataclasses.replace(
                partition,
                groups=(),
                isolate_fraction=partition.isolate_fraction or 0.25,
                start=scaled(partition.start),
                end=None if partition.end is None else scaled(partition.end),
            )
            for partition in self.partitions
        )
        disturbances = tuple(
            dataclasses.replace(
                disturbance,
                start=scaled(disturbance.start),
                end=None if disturbance.end is None else scaled(disturbance.end),
            )
            for disturbance in self.disturbances
        )
        workload = self.workload
        if workload.kind == "burst":
            # Clamp the scaled window into the valid [LOAD_START, duration]
            # load window so the shrunk spec always re-validates.
            burst_start = max(LOAD_START, scaled(workload.burst_start))
            burst_end = min(duration, max(burst_start + 0.5, scaled(workload.burst_end)))
            workload = dataclasses.replace(
                workload,
                tps=min(workload.tps, 200.0),
                burst_tps=min(workload.burst_tps, 600.0),
                burst_start=burst_start,
                burst_end=burst_end,
            )
        elif workload.kind == "diurnal":
            workload = dataclasses.replace(
                workload,
                tps=min(workload.tps, 200.0),
                amplitude=min(workload.amplitude, 150.0),
                period=scaled(workload.period),
            )
        elif workload.kind == "ramp":
            workload = dataclasses.replace(
                workload,
                tps=min(workload.tps, 100.0),
                end_tps=min(workload.end_tps, 600.0),
            )
        else:
            workload = dataclasses.replace(workload, tps=min(workload.tps, 300.0))
        return self.with_overrides(
            committee_sizes=(4,),
            loads=tuple(min(load, 300.0) for load in self.loads[:1]),
            duration=duration,
            warmup=min(self.warmup * scale, duration / 3.0),
            faults=tuple(faults),
            partitions=partitions,
            disturbances=disturbances,
            workload=workload,
        )


# -- spec parsing helpers ---------------------------------------------------

_MISSING = object()


def _parse_scalar(payload, key, types, default=_MISSING, required=False, cast=None):
    if key not in payload:
        if required:
            raise ConfigurationError(f"scenario spec is missing the {key!r} field")
        return default
    value = payload.pop(key)
    if isinstance(value, bool) and bool not in (types if isinstance(types, tuple) else (types,)):
        raise ConfigurationError(f"field {key!r} has the wrong type (bool)")
    if not isinstance(value, types):
        raise ConfigurationError(f"field {key!r} must be of type {types}")
    return cast(value) if cast is not None else value


def _parse_tuple(payload, key, types, default=(), cast=None):
    if key not in payload:
        return default
    value = payload.pop(key)
    if not isinstance(value, (list, tuple)):
        raise ConfigurationError(f"field {key!r} must be a list")
    items = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, types):
            raise ConfigurationError(f"entries of {key!r} must be of type {types}")
        items.append(cast(item) if cast is not None else item)
    return tuple(items)


def _parse_nested(payload, key, spec_class):
    if key not in payload:
        return spec_class()
    return _build_nested(payload.pop(key), key, spec_class)


def _parse_nested_tuple(payload, key, spec_class):
    if key not in payload:
        return ()
    value = payload.pop(key)
    if not isinstance(value, (list, tuple)):
        raise ConfigurationError(f"field {key!r} must be a list")
    return tuple(_build_nested(item, key, spec_class) for item in value)


def _build_nested(value, key, spec_class):
    if not isinstance(value, Mapping):
        raise ConfigurationError(f"entries of {key!r} must be JSON objects")
    fields = {field.name: field for field in dataclasses.fields(spec_class)}
    unknown = set(value) - set(fields)
    if unknown:
        raise ConfigurationError(f"unknown {key!r} keys: {sorted(unknown)}")
    kwargs: Dict[str, Any] = {}
    for name, item in value.items():
        if isinstance(item, list):
            item = tuple(tuple(entry) if isinstance(entry, list) else entry for entry in item)
        kwargs[name] = item
    try:
        return spec_class(**kwargs).validate()
    except TypeError as error:
        raise ConfigurationError(f"invalid {key!r} entry: {error}") from None


# -- compilation ------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CompiledPoint:
    """One runnable experiment derived from a scenario."""

    scenario: str
    committee_size: int
    protocol: str
    load: float
    config: ExperimentConfig
    # The scoring rule this point runs under (one entry of the spec's
    # ``scoring_rules`` axis, or its single ``scoring`` value).
    scoring: str = "hammerhead"


def _build_committee(spec: ScenarioSpec, size: int) -> Committee:
    if spec.stake == "equal":
        stake = equal_stake(size)
    elif spec.stake == "geometric":
        stake = geometric_stake(size)
    else:
        stake = zipfian_stake(size)
    return Committee.build(size, stake=stake, seed=spec.seed)


def _resolve_tail(committee: Committee, fault: FaultSpec, protect=(0,)) -> Tuple[int, ...]:
    """Resolve a count/fraction/max_faulty selector to concrete validators.

    Delegates to :func:`repro.faults.base.tail_validators`, the single
    definition of the observer-protecting tail convention.
    """
    if fault.max_faulty:
        count = committee.max_faulty
    elif fault.fraction is not None:
        count = max(1, int(round(fault.fraction * committee.size)))
    else:
        count = fault.count or 0
    return tail_validators(committee, count, protect)


def _resolve_targets(fault: FaultSpec, committee: Committee) -> Tuple[int, ...]:
    """Resolve the victim selection of a targeted behavior fault."""
    if fault.targets:
        targets = tuple(v for v in fault.targets if v in committee.validators)
    else:
        targets = head_validators(committee, fault.target_count or 1)
    _require(bool(targets), f"fault {fault.kind!r} selects no targets")
    return targets


def _behavior_factory(fault: FaultSpec, committee: Committee):
    """The picklable policy factory a behavior fault installs per validator."""
    if fault.kind == "equivocate":
        return partial(EquivocationPolicy, victims=_resolve_targets(fault, committee))
    if fault.kind == "silent-fanout":
        return partial(SilentFanoutPolicy, targets=_resolve_targets(fault, committee))
    if fault.kind == "lazy-leader":
        return partial(LazyLeaderPolicy, delay=fault.extra_delay)
    if fault.kind == "adaptive-equivocation":
        return partial(AdaptiveEquivocationPolicy)
    if fault.kind == "colluding-silence":
        return partial(
            ColludingSilencePolicy,
            victims=_resolve_targets(fault, committee),
            stride=fault.stride or 1,
        )
    if fault.kind == "adaptive-dos":
        return partial(AdaptiveSilentFanoutPolicy, stride=fault.stride or 3)
    if fault.kind == "coalition-gaming":
        return partial(CoalitionGamingPolicy, stride=fault.stride or 3)
    window = 6 if fault.window is None else fault.window
    return partial(ReputationGamingPolicy, window=window)


def _compile_faults(
    spec: ScenarioSpec, committee: Committee
) -> Tuple[int, float, Tuple[FaultPlan, ...]]:
    """Lower the fault timeline onto one committee.

    Returns ``(builtin_crash_count, builtin_crash_time, extra_plans)``.
    A single tail-selected permanent crash maps onto the config's builtin
    ``faults``/``fault_time`` fields — byte-identical to the hand-written
    pre-scenario configurations — while everything else becomes an
    explicit plan in ``extra_faults``.
    """
    builtin_faults = 0
    builtin_time = 0.0
    plans: List[FaultPlan] = []
    # (validators, start, end, label) of every behavior fault, with
    # selectors and committee-relative times resolved: the exact overlap
    # check the spec-level validator can only approximate.
    behavior_windows: List[Tuple[Tuple[int, ...], float, Optional[float], str]] = []
    for fault in spec.faults:
        # Timeline instants resolve per sweep point: a committee-relative
        # expression yields a different concrete time at each size.
        at = resolve_time(fault.at, committee.size)
        recover_at = resolve_time(fault.recover_at, committee.size)
        end = resolve_time(fault.end, committee.size)
        if fault.kind == "crash" and not fault.validators:
            # Tail-selected permanent crash: the builtin path.
            builtin_faults = len(_resolve_tail(committee, fault))
            builtin_time = at
            continue
        if fault.kind in ("crash", "crash-recovery"):
            validators = fault.validators or _resolve_tail(committee, fault)
            validators = tuple(v for v in validators if v in committee.validators)
            _require(bool(validators), f"fault {fault.kind!r} selects no validators")
            if fault.kind == "crash":
                plans.append(CrashFault(validators=validators, at_time=at))
            else:
                _require(
                    recover_at > at,
                    "crash-recovery needs recover_at after the crash time "
                    f"(resolved to {at} and {recover_at} at committee {committee.size})",
                )
                plans.append(
                    CrashRecoveryFault(
                        validators=validators,
                        crash_at=at,
                        recover_at=recover_at,
                    )
                )
        elif fault.kind == "slow":
            _require(
                end is None or end > at,
                "a slow window must close after it opens "
                f"(resolved to {at} and {end} at committee {committee.size})",
            )
            if fault.fraction is not None and not fault.validators:
                plans.append(
                    degrade_fraction(
                        committee,
                        fraction=fault.fraction,
                        extra_delay=fault.extra_delay,
                        start=at,
                        end=end,
                    )
                )
            else:
                validators = fault.validators or _resolve_tail(committee, fault)
                plans.append(
                    SlowValidatorFault(
                        validators=tuple(validators),
                        extra_delay=fault.extra_delay,
                        start=at,
                        end=end,
                    )
                )
        elif fault.kind == "vote-withholding":
            validators = fault.validators or _resolve_tail(committee, fault)
            plans.append(VoteWithholdingFault(validators=tuple(validators), at_time=at))
        elif fault.kind in BEHAVIOR_FAULT_KINDS:
            validators = (
                fault.coalition or fault.validators or _resolve_tail(committee, fault)
            )
            validators = tuple(v for v in validators if v in committee.validators)
            _require(bool(validators), f"fault {fault.kind!r} selects no validators")
            _require(
                end is None or end > at,
                "a behavior window must close after it opens "
                f"(resolved to {at} and {end} at committee {committee.size})",
            )
            behavior_windows.append((validators, at, end, fault.kind))
            plans.append(
                BehaviorFault(
                    validators=validators,
                    policy_factory=_behavior_factory(fault, committee),
                    start=at,
                    end=end,
                    coordinated=fault.kind in COALITION_FAULT_KINDS,
                )
            )
    if len(behavior_windows) > 1:
        try:
            validate_behavior_windows(behavior_windows)
        except ValueError as error:
            raise ConfigurationError(str(error)) from None
    for partition in spec.partitions:
        if partition.isolate_fraction is not None:
            plans.append(
                isolate_tail_fraction(
                    committee,
                    fraction=partition.isolate_fraction,
                    start=partition.start,
                    end=partition.end,
                )
            )
        else:
            groups = tuple(
                tuple(v for v in group if v in committee.validators)
                for group in partition.groups
            )
            plans.append(PartitionPlan(groups=groups, start=partition.start, end=partition.end))
    for disturbance in spec.disturbances:
        plans.append(
            NetworkDisturbanceFault(
                jitter=disturbance.jitter,
                loss_rate=disturbance.loss_rate,
                start=disturbance.start,
                end=disturbance.end,
            )
        )
    return builtin_faults, builtin_time, tuple(plans)


def _compile_workload(
    spec: ScenarioSpec,
) -> Tuple[Tuple[float, ...], Tuple[Tuple[float, float, float], ...]]:
    """Derive the load points and the phased profile (if any) of a spec."""
    workload = spec.workload
    if workload.kind == "constant":
        loads = spec.loads or (workload.tps,)
        return tuple(loads), ()
    start, end = LOAD_START, spec.duration
    if workload.kind == "burst":
        phases = burst_phases(
            base_tps=workload.tps,
            burst_tps=workload.burst_tps,
            burst_start=max(start, workload.burst_start),
            burst_end=min(end, workload.burst_end),
            start=start,
            end=end,
        )
    elif workload.kind == "ramp":
        phases = ramp_phases(
            start_tps=workload.tps,
            end_tps=workload.end_tps,
            steps=workload.steps,
            start=start,
            end=end,
        )
    else:
        phases = diurnal_phases(
            base_tps=workload.tps,
            amplitude=workload.amplitude,
            period=workload.period or (end - start),
            steps=workload.steps,
            start=start,
            end=end,
        )
    validate_phases(phases)
    nominal = round(average_tps(phases), 3)
    return (nominal,), tuple((phase.start, phase.end, phase.tps) for phase in phases)


def compile_spec(spec: ScenarioSpec, seed: Optional[int] = None) -> List[CompiledPoint]:
    """Lower ``spec`` into runnable experiment configurations.

    Points are ordered committee-major, then protocol, then load — the
    same order :func:`repro.sim.sweep.compare_systems` submits its batch,
    so a scenario run through the sweep engine visits identical
    configurations in the identical order.  ``seed`` overrides the spec's
    seed (used by multi-seed sweeps).
    """
    spec = spec.validate()
    run_seed = spec.seed if seed is None else seed
    # The scoring-rule sweep axis: innermost, so existing single-rule
    # scenarios keep their historical compile order (and digests).
    scoring_rules = spec.scoring_rules or (spec.scoring,)
    points: List[CompiledPoint] = []
    for committee_size in spec.committee_sizes:
        committee = _build_committee(spec, committee_size)
        builtin_faults, builtin_time, plans = _compile_faults(spec, committee)
        loads, load_phases = _compile_workload(spec)
        for protocol in spec.protocols:
            for load in loads:
                for scoring in scoring_rules:
                    config = ExperimentConfig(
                        protocol=protocol,
                        committee_size=committee_size,
                        stake=spec.stake,
                        input_load_tps=load,
                        load_phases=load_phases,
                        duration=spec.duration,
                        warmup=spec.warmup,
                        faults=builtin_faults,
                        fault_time=builtin_time,
                        extra_faults=plans,
                        commits_per_schedule=spec.commits_per_schedule,
                        scoring=scoring,
                        latency_model=spec.latency_model,
                        gst=spec.gst,
                        delta=spec.delta,
                        seed=run_seed,
                        partition_failover=spec.partition_failover,
                        certificate_piggyback=spec.certificate_piggyback,
                    ).validate()
                    points.append(
                        CompiledPoint(
                            scenario=spec.name,
                            committee_size=committee_size,
                            protocol=protocol,
                            load=load,
                            config=config,
                            scoring=scoring,
                        )
                    )
    return points
