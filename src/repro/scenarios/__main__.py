"""Entry point for ``python -m repro.scenarios``."""

import sys

from repro.scenarios.cli import main

if __name__ == "__main__":
    sys.exit(main())
