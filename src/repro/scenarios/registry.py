"""The scenario registry: named, curated adversarial scenarios.

Every entry is a :class:`~repro.scenarios.spec.ScenarioSpec` builder; the
registry maps a stable name to the spec plus a one-line summary for the
CLI's ``list`` output.  The first three entries reproduce the paper's
evaluation (Figures 1/2 and the Sui mainnet incident of the
introduction); the rest stress the reputation schedule with adversities
the paper only alludes to — churn, targeted Byzantine pressure,
asymmetric partitions, load spikes, and a combined adversary.

Scenarios are registered at import time; external code can add more with
:func:`register_scenario` (e.g. ad-hoc specs loaded from JSON files).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.scenarios.spec import (
    DisturbanceSpec,
    FaultSpec,
    PartitionSpec,
    ScenarioSpec,
    WorkloadSpec,
)

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry under its own name."""
    spec = spec.validate()
    if spec.name in _REGISTRY and not replace:
        raise ConfigurationError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(_REGISTRY)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise ConfigurationError(f"unknown scenario {name!r} (known: {known})") from None


def all_scenarios() -> Dict[str, ScenarioSpec]:
    """A copy of the whole registry."""
    return dict(_REGISTRY)


# -- the curated catalogue --------------------------------------------------

register_scenario(
    ScenarioSpec(
        name="faultless",
        description=(
            "Figure 1: latency/throughput in ideal conditions, HammerHead vs "
            "Bullshark under increasing load"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10, 25),
        loads=(1000.0, 2500.0, 4000.0),
        duration=40.0,
        warmup=10.0,
        seed=2,
    )
)

register_scenario(
    ScenarioSpec(
        name="figure2-faults",
        description=(
            "Figure 2: maximum tolerable crash faults from t=0; Bullshark "
            "loses throughput, HammerHead keeps its fault-free peak"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10, 25),
        loads=(1000.0, 2500.0, 4000.0),
        duration=80.0,
        warmup=40.0,
        seed=2,
        faults=(FaultSpec(kind="crash", max_faulty=True, at=0.0),),
    )
)

register_scenario(
    ScenarioSpec(
        name="sui-incident",
        description=(
            "The August 29 Sui mainnet incident: ~10% of validators degraded "
            "at low load; the static schedule's tail latency rises, "
            "HammerHead demotes the stragglers"
        ),
        protocols=("bullshark", "hammerhead"),
        committee_sizes=(13,),
        loads=(130.0,),
        duration=90.0,
        warmup=40.0,
        seed=5,
        faults=(FaultSpec(kind="slow", fraction=0.10, extra_delay=0.6),),
    )
)

register_scenario(
    ScenarioSpec(
        name="rolling-crash-churn",
        description=(
            "Maintenance churn: three validators crash and recover in "
            "overlapping rolling waves; the schedule must chase the churn"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10,),
        loads=(1500.0,),
        duration=90.0,
        warmup=20.0,
        seed=7,
        faults=(
            FaultSpec(kind="crash-recovery", validators=(9,), at=15.0, recover_at=45.0),
            FaultSpec(kind="crash-recovery", validators=(8,), at=30.0, recover_at=60.0),
            FaultSpec(kind="crash-recovery", validators=(7,), at=45.0, recover_at=75.0),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="targeted-leader-attack",
        description=(
            "Byzantine vote withholding: f validators systematically drop "
            "their votes for honest leaders and lose reputation for it"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10,),
        loads=(1500.0,),
        duration=80.0,
        warmup=30.0,
        seed=4,
        faults=(FaultSpec(kind="vote-withholding", max_faulty=True, at=0.0),),
    )
)

register_scenario(
    ScenarioSpec(
        name="asymmetric-partition",
        description=(
            "A quarter of the committee is cut off for a window mid-run; the "
            "majority side keeps its quorum and the minority resyncs after "
            "the heal"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(12,),
        loads=(1200.0,),
        duration=90.0,
        warmup=15.0,
        seed=6,
        partitions=(PartitionSpec(isolate_fraction=0.25, start=30.0, end=55.0),),
    )
)

register_scenario(
    ScenarioSpec(
        name="load-spike",
        description=(
            "A 4x client load spike in the middle of the run (flash-crowd "
            "traffic) on an otherwise healthy committee"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10,),
        workload=WorkloadSpec(
            kind="burst",
            tps=800.0,
            burst_tps=3200.0,
            burst_start=30.0,
            burst_end=50.0,
        ),
        duration=80.0,
        warmup=15.0,
        seed=3,
    )
)

register_scenario(
    ScenarioSpec(
        name="equivocation-split",
        description=(
            "Byzantine equivocation: two validators send conflicting "
            "vertices to a deceived head subset; quorum intersection keeps "
            "the fork out of the DAG and the schedule reacts to the damage"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10,),
        loads=(1200.0,),
        duration=80.0,
        warmup=30.0,
        seed=8,
        faults=(FaultSpec(kind="equivocate", count=2, at=10.0, target_count=3),),
    )
)

register_scenario(
    ScenarioSpec(
        name="silent-saboteur",
        description=(
            "Targeted DoS: two validators go silent towards a victim pair "
            "(no traffic, no acks, no fetch service) for a mid-run window; "
            "the victims limp along through third parties"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10,),
        loads=(1200.0,),
        duration=80.0,
        warmup=30.0,
        seed=10,
        faults=(
            FaultSpec(kind="silent-fanout", count=2, at=10.0, end=60.0, target_count=2),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="lazy-leader",
        description=(
            "Timing adversary: f validators behave perfectly except on "
            "their own leader slots, which they delay past the leader "
            "timeout — leader-based scoring sees skips, vote-based sees "
            "nothing"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10,),
        loads=(1500.0,),
        duration=80.0,
        warmup=30.0,
        seed=11,
        faults=(FaultSpec(kind="lazy-leader", max_faulty=True, at=0.0, extra_delay=6.0),),
    )
)

register_scenario(
    ScenarioSpec(
        name="reputation-gamer",
        description=(
            "An attack on the scoring rule itself: the adversary withholds "
            "votes except around its own leader slots, harvesting just "
            "enough reputation to dodge the demoted set entirely"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10,),
        loads=(1500.0,),
        duration=80.0,
        warmup=30.0,
        seed=4,
        faults=(FaultSpec(kind="reputation-gaming", count=1, at=0.0, window=9),),
    )
)

register_scenario(
    ScenarioSpec(
        name="partition-failover",
        description=(
            "The asymmetric partition with client failover enabled: load "
            "abandons the minority side while the window is open and "
            "returns at the heal"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(12,),
        loads=(1200.0,),
        duration=90.0,
        warmup=15.0,
        seed=6,
        partitions=(PartitionSpec(isolate_fraction=0.25, start=30.0, end=55.0),),
        partition_failover=True,
    )
)

register_scenario(
    ScenarioSpec(
        name="reputation-gamer-strict",
        description=(
            "The window-9 gamer on a committee where the window actually "
            "bites: at 13 validators the 19-round honest window no longer "
            "covers the 26-round rotation, so the adversary must withhold "
            "real votes — completeness reads the deficit exactly"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(13,),
        loads=(1500.0,),
        duration=80.0,
        warmup=30.0,
        seed=4,
        faults=(FaultSpec(kind="reputation-gaming", count=1, at=0.0, window=9),),
    )
)

register_scenario(
    ScenarioSpec(
        name="colluding-silence",
        description=(
            "A three-member coalition splits a victim set between its "
            "members: every victim is starved of traffic, acks, and fetch "
            "service, but each colluder only ever touches a third of them"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10,),
        loads=(1200.0,),
        duration=80.0,
        warmup=30.0,
        seed=10,
        faults=(
            FaultSpec(
                kind="colluding-silence",
                coalition=(7, 8, 9),
                at=10.0,
                end=60.0,
                targets=(1, 2, 3),
            ),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="adaptive-dos",
        description=(
            "Schedule-aware DoS coalition: each anchor round the duty "
            "member re-aims at the leader the current schedule is about to "
            "elect — silence plus a withheld vote — so schedule changes "
            "never shake the attack off"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10,),
        loads=(1500.0,),
        duration=80.0,
        warmup=30.0,
        seed=4,
        faults=(
            FaultSpec(kind="adaptive-dos", coalition=(7, 8, 9), at=0.0, stride=2),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="coalition-gaming",
        description=(
            "The coalition reputation gamer: vote withholding rotates "
            "through the members so each one misses only a sliver of its "
            "vote opportunities per epoch — the probe for how far the "
            "completeness rule can be stretched"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10,),
        loads=(1500.0,),
        duration=80.0,
        warmup=30.0,
        seed=4,
        faults=(
            FaultSpec(kind="coalition-gaming", coalition=(7, 8, 9), at=0.0, stride=3),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="adaptive-equivocation",
        description=(
            "Equivocation re-aimed every round at the upcoming leaders of "
            "the current schedule instead of a fixed victim set"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10,),
        loads=(1200.0,),
        duration=80.0,
        warmup=30.0,
        seed=8,
        faults=(FaultSpec(kind="adaptive-equivocation", count=1, at=10.0),),
    )
)

# Scenario composition (ScenarioSpec.then): maintenance churn, a quiet
# gap, then a traffic spike while the committee digests the churn.
_churn_phase = ScenarioSpec(
    name="maintenance-churn",
    description="two validators crash and recover in sequence",
    protocols=("hammerhead", "bullshark"),
    committee_sizes=(10,),
    workload=WorkloadSpec(kind="constant", tps=1200.0),
    duration=45.0,
    warmup=15.0,
    seed=12,
    faults=(
        FaultSpec(kind="crash-recovery", validators=(9,), at=10.0, recover_at=25.0),
        FaultSpec(kind="crash-recovery", validators=(8,), at=20.0, recover_at=35.0),
    ),
)
_spike_phase = ScenarioSpec(
    name="recovery-spike",
    description="a 2.5x burst lands while the committee digests the churn",
    protocols=("hammerhead", "bullshark"),
    committee_sizes=(10,),
    workload=WorkloadSpec(
        kind="burst",
        tps=1200.0,
        burst_tps=3000.0,
        burst_start=10.0,
        burst_end=20.0,
    ),
    duration=35.0,
    warmup=10.0,
    seed=12,
)
register_scenario(_churn_phase.then(_spike_phase, gap=5.0))

# The lossy-recovery pair: the same mid-run loss window with certificate
# piggybacking off (fetch round-trips recover lost certificates) and on
# (the propose fan-out heals them passively).  CI's lossy-recovery-smoke
# job runs both and asserts prefix consistency plus the recovery-latency
# improvement; the specs differ in exactly the one flag.
_lossy_recovery = ScenarioSpec(
    name="lossy-recovery",
    description=(
        "A mid-run loss window on an otherwise healthy committee: lost "
        "certificates are recovered by explicit fetch round-trips "
        "(piggybacking off — the baseline half of the recovery pair)"
    ),
    protocols=("bullshark",),
    committee_sizes=(10,),
    loads=(1000.0,),
    duration=60.0,
    warmup=10.0,
    seed=13,
    disturbances=(DisturbanceSpec(jitter=0.02, loss_rate=0.12, start=15.0, end=30.0),),
)
register_scenario(_lossy_recovery)

register_scenario(
    _lossy_recovery.with_overrides(
        name="lossy-recovery-piggyback",
        description=(
            "The same loss window with certificate piggybacking on: the "
            "propose fan-out heals lost certificates before the fetch "
            "timer fires (the treatment half of the recovery pair)"
        ),
        certificate_piggyback=True,
    )
)

register_scenario(
    ScenarioSpec(
        name="mixed-adversary",
        description=(
            "Everything at once: a crash, degraded validators, a jitter/loss "
            "window, and a load burst — the kitchen-sink robustness check"
        ),
        protocols=("hammerhead", "bullshark"),
        committee_sizes=(10,),
        workload=WorkloadSpec(
            kind="burst",
            tps=1000.0,
            burst_tps=2500.0,
            burst_start=40.0,
            burst_end=55.0,
        ),
        duration=90.0,
        warmup=20.0,
        seed=9,
        faults=(
            FaultSpec(kind="crash", validators=(9,), at=10.0),
            FaultSpec(kind="slow", validators=(7, 8), extra_delay=0.4, at=25.0, end=65.0),
        ),
        disturbances=(DisturbanceSpec(jitter=0.15, loss_rate=0.02, start=35.0, end=60.0),),
    )
)
