"""The ``python -m repro.scenarios`` command-line runner.

Subcommands::

    list                       show the registered scenarios
    describe NAME              print a scenario's JSON spec and digest
    run NAME                   run a scenario, print the report table,
                               and write the reproducibility artifact
    sweep NAME --seeds 1 2 3   run a scenario across several seeds
    matrix                     run the attack x scoring-rule ablation
                               matrix (--attacks / --rules subset it)
                               and write its artifact
    diff A.json B.json         compare two artifacts: same scenario
                               digest -> per-point ordering-digest and
                               performance deltas; different digests ->
                               explain the spec difference.  Non-zero
                               exit on any mismatch (CI-friendly).
                               --prefix compares by longest common
                               committed prefix instead (for pairs that
                               legitimately diverge, e.g. the
                               lossy-recovery pair)

``run`` and ``sweep`` accept ``--spec FILE`` instead of a registered
name, so ad-hoc scenarios can be described in JSON and executed without
touching the registry.  Every run writes an artifact JSON (``--output``,
default ``scenario-<name>.json``) containing the spec echo, the
``scenario_digest``, and the per-point reports and ordering digests.

``--smoke`` shrinks any scenario to a tiny committee and a short horizon
(CI smoke runs; see :meth:`ScenarioSpec.smoke`).

``run``/``sweep`` accept ``--backend {sim,lockstep,net}``: the default
free-running simulation, the content-deterministic lockstep oracle, or
the real-socket backend (see ``repro/netexec/``).  ``lockstep`` and
``net`` artifacts for the same spec+seed must diff clean — the CI
``cross-backend-smoke`` job pins that equivalence.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cliutil import run_guarded
from repro.errors import ReproError
from repro.metrics.report import format_table
from repro.scenarios.registry import get_scenario, all_scenarios
from repro.scenarios.runner import (
    default_artifact_path,
    run_scenario,
    write_artifact,
)
from repro.scenarios.spec import ScenarioSpec, compile_spec


def _load_spec(args: argparse.Namespace) -> ScenarioSpec:
    if getattr(args, "spec", None):
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            # Normalized into the library's error hierarchy so the CLI
            # entry point guarantees a stderr message and a non-zero
            # exit code instead of a traceback (CI trusts exit codes).
            raise ReproError(f"cannot read spec file {args.spec!r}: {error}") from None
        spec = ScenarioSpec.from_json(text)
    else:
        spec = get_scenario(args.name)
    if getattr(args, "smoke", False):
        spec = spec.smoke()
    return spec


def _cmd_list(args: argparse.Namespace) -> int:
    scenarios = all_scenarios()
    width = max(len(name) for name in scenarios)
    print(f"{len(scenarios)} registered scenarios:")
    for name, spec in scenarios.items():
        print(f"  {name.ljust(width)}  {spec.description}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    print(spec.to_json())
    print(f"scenario_digest: {spec.scenario_digest()}")
    if spec.scoring_rules:
        print(f"scoring-rule sweep axis: {', '.join(spec.scoring_rules)}")
    else:
        print(f"scoring rule: {spec.scoring}")
    points = compile_spec(spec)
    print(f"compiles to {len(points)} experiment point(s):")
    for point in points:
        label = point.config.label()
        if spec.scoring_rules:
            label += f" [scoring {point.scoring}]"
        print(f"  {label}")
        for plan in point.config.extra_faults:
            print(f"    - {plan.describe()}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    seeds = args.seeds if getattr(args, "seeds", None) else None
    label = f"seeds {seeds}" if seeds else f"seed {spec.seed}"
    print(f"Running scenario {spec.name!r} ({label}) ...")
    trace_path = getattr(args, "trace", None)
    backend = getattr(args, "backend", "sim")
    if backend != "sim":
        print(f"backend: {backend}")
    artifact = run_scenario(
        spec,
        seeds=seeds,
        parallelism=args.parallelism,
        trace_path=trace_path,
        backend=backend,
    )
    _print_artifact_table(spec, artifact)
    suffix = "-smoke" if args.smoke else ""
    path = args.output or default_artifact_path(spec, suffix=suffix)
    write_artifact(artifact, path)
    print(f"wrote {path}")
    if trace_path:
        print(f"wrote trace {trace_path}")
    return 0


def _print_artifact_table(spec: ScenarioSpec, artifact: dict) -> None:
    from repro.metrics.report import PerformanceReport

    reports = []
    for point in artifact["points"]:
        data = dict(point["report"])
        extra = {
            key: value
            for key, value in data.items()
            if key not in PerformanceReport.__dataclass_fields__
        }
        kwargs = {
            key: value
            for key, value in data.items()
            if key in PerformanceReport.__dataclass_fields__ and key != "extra"
        }
        reports.append(PerformanceReport(extra=extra, **kwargs))
    print()
    print(format_table(reports, title=f"Scenario {spec.name} - {spec.description}"))
    print()
    print(f"scenario_digest: {artifact['scenario_digest']}")
    for point in artifact["points"]:
        print(
            f"  {point['label']} seed {point['seed']}: "
            f"ordering_digest {point['ordering_digest'][:16]}... "
            f"({point['ordered_count']} ordered)"
        )


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.scenarios.matrix import format_matrix_table, run_matrix

    attacks = args.attacks or None
    rules = args.rules or None
    print("Running the attack x scoring-rule matrix ...")
    document = run_matrix(
        attacks=attacks,
        rules=rules,
        smoke=args.smoke,
        parallelism=args.parallelism,
    )
    print()
    print(format_matrix_table(document))
    print()
    print("cell verdicts read 'culprits demoted / culprit count[@first round]'")
    path = args.output or ("scenario-matrix-smoke.json" if args.smoke else "scenario-matrix.json")
    write_artifact(document, path)
    print(f"wrote {path}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.scenarios.diff import diff_artifact_files

    code, lines = diff_artifact_files(
        args.left,
        args.right,
        prefix=getattr(args, "prefix", False),
        min_prefix=getattr(args, "min_prefix", 1),
    )
    stream = sys.stderr if code else sys.stdout
    for line in lines:
        print(line, file=stream)
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="show the registered scenarios")

    describe = commands.add_parser("describe", help="print a scenario spec and digest")
    _add_spec_arguments(describe)

    run = commands.add_parser("run", help="run a scenario and write its artifact")
    _add_spec_arguments(run)
    _add_run_arguments(run)

    sweep = commands.add_parser("sweep", help="run a scenario across several seeds")
    _add_spec_arguments(sweep)
    _add_run_arguments(sweep)

    matrix = commands.add_parser(
        "matrix",
        help="run the attack x scoring-rule ablation matrix",
    )
    matrix.add_argument(
        "--attacks",
        nargs="+",
        default=None,
        help="registry scenarios to use as attacks (default: the curated attack set)",
    )
    matrix.add_argument(
        "--rules",
        nargs="+",
        default=None,
        help="scoring rules to ablate over (default: every registered rule)",
    )
    matrix.add_argument(
        "--smoke",
        action="store_true",
        help="shrink every attack to smoke scale (CI)",
    )
    matrix.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="sweep worker processes (default: REPRO_SWEEP_PARALLELISM or CPU count)",
    )
    matrix.add_argument("--output", default=None, help="matrix artifact JSON path")

    diff = commands.add_parser(
        "diff",
        help="compare two artifact files (non-zero exit on mismatch)",
    )
    diff.add_argument("left", help="first artifact JSON")
    diff.add_argument("right", help="second artifact JSON")
    diff.add_argument(
        "--prefix",
        action="store_true",
        help="compare by longest common committed prefix (checkpoint "
        "chains) instead of requiring byte-identical ordering digests — "
        "for artifact pairs that legitimately diverge, e.g. the "
        "lossy-recovery pair",
    )
    diff.add_argument(
        "--min-prefix",
        type=int,
        default=1,
        dest="min_prefix",
        help="smallest acceptable common committed prefix (ordered "
        "positions) for a genuinely diverging point pair (default 1; "
        "only meaningful with --prefix)",
    )
    return parser


def _add_spec_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("name", nargs="?", help="a registered scenario name")
    subparser.add_argument("--spec", help="path to a scenario spec JSON file")
    subparser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink to a tiny committee and short horizon (CI smoke run)",
    )


def _add_run_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="seeds to fan out over (default: the spec's own seed)",
    )
    subparser.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="sweep worker processes (default: REPRO_SWEEP_PARALLELISM or CPU count)",
    )
    subparser.add_argument("--output", default=None, help="artifact JSON path")
    subparser.add_argument(
        "--backend",
        choices=("sim", "lockstep", "net"),
        default="sim",
        help="execution backend: 'sim' (free-running discrete-event "
        "simulation, the default), 'lockstep' (content-deterministic "
        "lockstep mode on the simulator — the cross-validation oracle), "
        "or 'net' (the same lockstep mode over real asyncio sockets). "
        "lockstep and net must produce identical ordering digests for "
        "the same spec+seed; crash faults only",
    )
    subparser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="enable the deterministic tracer and write the event JSONL "
        "to PATH next to the artifact (digest-neutral; see repro.obs)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in ("describe", "run", "sweep") and not (args.name or args.spec):
        parser.error("give a scenario name or --spec FILE")
    handlers = {
        "list": _cmd_list,
        "describe": _cmd_describe,
        "run": _cmd_run,
        "sweep": _cmd_run,  # sweep is run with --seeds made prominent
        "matrix": _cmd_matrix,
        "diff": _cmd_diff,
    }
    # Exit codes, stderr-only `error:` lines, and BrokenPipeError
    # handling are the shared contract in repro.cliutil.
    return run_guarded(lambda: handlers[args.command](args))


if __name__ == "__main__":
    sys.exit(main())
