"""Scenario engine: declarative adversarial/network scenario specs.

This package is the layer between "I want to see how the schedule behaves
under X" and the raw experiment harness.  A scenario is *data* — a
:class:`ScenarioSpec` describing committee/load presets, a phased
timeline of fault injections (crash, crash-recovery, slow, and the
behavior-policy adversaries: vote withholding, equivocation, selective
silence, lazy leaders, reputation gaming), network disturbances
(partitions, jitter/loss windows), and a workload shape (constant,
burst, ramp, diurnal) — that serializes to JSON, validates on the way
back in, and hashes to a deterministic ``scenario_digest``.  Timeline
instants may be committee-size-relative expressions resolved per sweep
point, and specs concatenate in time with :meth:`ScenarioSpec.then`.

:func:`compile_spec` lowers a spec onto the existing simulation stack
(:class:`~repro.sim.experiment.ExperimentConfig` plus
:class:`~repro.faults.base.FaultPlan` timelines); :func:`run_scenario`
fans the compiled points through the parallel sweep engine and returns a
reproducibility artifact (spec echo + digests + per-point reports).

Command line::

    python -m repro.scenarios list
    python -m repro.scenarios describe sui-incident
    python -m repro.scenarios run sui-incident --output sui.json
    python -m repro.scenarios run mixed-adversary --smoke
    python -m repro.scenarios sweep figure2-faults --seeds 1 2 3
    python -m repro.scenarios matrix --smoke
    python -m repro.scenarios run --spec my_scenario.json

The registry ships nineteen curated scenarios: the paper's evaluation
(``faultless``, ``figure2-faults``, ``sui-incident``), environmental
adversity (``rolling-crash-churn``, ``asymmetric-partition``,
``load-spike``, ``mixed-adversary``, ``partition-failover``,
``maintenance-churn+recovery-spike``), the behavior-policy attacks
(``targeted-leader-attack``, ``equivocation-split``, ``silent-saboteur``,
``lazy-leader``, ``reputation-gamer``, ``reputation-gamer-strict``,
``adaptive-equivocation``), and the coalition attacks
(``colluding-silence``, ``adaptive-dos``, ``coalition-gaming``).  The
``examples/`` figure scripts are thin wrappers over the first three;
``python -m repro.scenarios matrix`` runs the attack x scoring-rule
ablation over the curated attack set (:mod:`repro.scenarios.matrix`).
"""

from repro.scenarios.matrix import (
    DEFAULT_MATRIX_ATTACKS,
    format_matrix_table,
    run_matrix,
    summarize_matrix,
)
from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.runner import (
    build_artifact,
    default_artifact_path,
    run_scenario,
    write_artifact,
)
from repro.scenarios.spec import (
    CompiledPoint,
    DisturbanceSpec,
    FaultSpec,
    PartitionSpec,
    ScenarioSpec,
    WorkloadSpec,
    compile_spec,
)

__all__ = [
    "ScenarioSpec",
    "FaultSpec",
    "PartitionSpec",
    "DisturbanceSpec",
    "WorkloadSpec",
    "CompiledPoint",
    "compile_spec",
    "register_scenario",
    "scenario_names",
    "get_scenario",
    "all_scenarios",
    "run_scenario",
    "build_artifact",
    "write_artifact",
    "default_artifact_path",
    "run_matrix",
    "summarize_matrix",
    "format_matrix_table",
    "DEFAULT_MATRIX_ATTACKS",
]
