"""Run compiled scenarios and assemble reproducibility artifacts.

A scenario run fans its compiled points (and, for sweeps, all requested
seeds) through the :class:`~repro.sim.sweep.SweepEngine` as one batch, so
multi-core hosts overlap every experiment.  The outcome is an *artifact*:
a plain-JSON document echoing the full spec, its deterministic
``scenario_digest``, and — per point — the performance report and the
observer's ordering digest.  Two artifact files with equal digests were
produced by the same scenario definition; equal ordering digests mean the
runs ordered identical transaction sequences.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.scenarios.spec import CompiledPoint, ScenarioSpec, compile_spec
from repro.sim.experiment import ExperimentResult
from repro.sim.sweep import SweepEngine

ARTIFACT_VERSION = 1

# Execution backends for `run`:
#   sim      — the free-running discrete-event simulation (the default,
#              and the digest lineage every recorded baseline pins);
#   lockstep — the content-deterministic lockstep mode on the simulator
#              (the cross-validation oracle, repro.netexec.lockstep);
#   net      — the same lockstep mode over real asyncio sockets
#              (repro.netexec.runner).
# Lockstep-family digests are a different (deliberately time-free)
# lineage from plain sim digests; `lockstep` and `net` must match each
# other byte for byte, which the CI cross-backend-smoke job enforces.
BACKENDS = ("sim", "lockstep", "net")


def run_scenario(
    spec: ScenarioSpec,
    seeds: Optional[Sequence[int]] = None,
    parallelism: Optional[int] = None,
    trace_path: Optional[str] = None,
    backend: str = "sim",
) -> Dict[str, Any]:
    """Run every point of ``spec`` (per seed) and return the artifact.

    ``seeds`` defaults to the spec's own seed; passing several fans the
    whole (committee x protocol x load x seed) product through the sweep
    engine as a single batch.

    ``trace_path`` enables the deterministic tracer on every point and
    writes the combined event stream as JSONL (one file, each event
    tagged with its point label and seed).  Tracing is digest-neutral:
    the artifact is byte-identical with or without it.  On the ``net``
    backend the stamps are monotonic wall-clock times — diagnostics
    only, never digest-bearing.

    ``backend`` selects the execution engine (see :data:`BACKENDS`).
    The lockstep-family backends run their points serially: ``net``
    owns the process event loop, and the oracle is cheap at the small
    scales cross-validation targets.
    """
    if backend not in BACKENDS:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    run_seeds = list(seeds) if seeds else [spec.seed]
    points: List[CompiledPoint] = []
    for seed in run_seeds:
        points.extend(compile_spec(spec, seed=seed))
    configs = [point.config for point in points]
    if trace_path is not None:
        configs = [config.with_overrides(trace=True) for config in configs]
    if backend == "sim":
        results = SweepEngine(parallelism=parallelism).run(configs)
    elif backend == "lockstep":
        from repro.netexec.lockstep import run_lockstep_experiment

        results = [run_lockstep_experiment(config) for config in configs]
    else:
        from repro.netexec.runner import run_net_experiment

        results = [run_net_experiment(config) for config in configs]
    artifact = build_artifact(spec, run_seeds, points, results)
    artifact["backend"] = backend
    if trace_path is not None:
        write_trace(trace_path, artifact, results)
    return artifact


def build_artifact(
    spec: ScenarioSpec,
    seeds: Sequence[int],
    points: Sequence[CompiledPoint],
    results: Sequence[ExperimentResult],
) -> Dict[str, Any]:
    """Assemble the reproducibility artifact for a finished run."""
    artifact_points = []
    # With a scoring_rules sweep axis, the config label alone no longer
    # identifies a point; suffix the rule so artifact diffing and the
    # bench gate keep a unique per-point key.
    label_needs_rule = bool(getattr(spec, "scoring_rules", ()))
    for point, result in zip(points, results):
        observer = result.config.observer
        ordered_count, ordering_digest = result.ordering_digests[observer]
        label = result.config.label()
        if label_needs_rule:
            label = f"{label} [{result.config.scoring}]"
        artifact_points.append(
            {
                "committee_size": point.committee_size,
                "protocol": point.protocol,
                "load": point.load,
                "scoring": getattr(point, "scoring", result.config.scoring),
                "seed": result.config.seed,
                "label": label,
                "report": result.report.as_dict(),
                "ordering_digest": ordering_digest,
                "ordered_count": ordered_count,
                # Periodic (count, digest) snapshots of the observer's
                # rolling ordering digest: the committed-prefix chain
                # `scenarios diff --prefix` compares when two artifacts
                # legitimately diverge (e.g. lossy piggyback on vs off).
                "ordering_checkpoints": [
                    list(checkpoint)
                    for checkpoint in result.ordering_checkpoints.get(observer, ())
                ],
                "schedule_changes": result.report.schedule_changes,
                "crashed_validators": list(result.crashed_validators),
                # Reputation-reaction summary (observer's schedule history):
                # score trajectory per change, rounds-until-demotion and
                # leader-slot share of the fault-affected validators.
                "reputation": result.reputation,
                # Instrumentation snapshot (repro.obs).  The memo block
                # reports process-wide caches, so its numbers depend on
                # what else ran in the worker process; `scenarios diff`
                # and the bench gate compare digests/reports only and
                # ignore this key.
                "counters": result.counters,
            }
        )
    return {
        "artifact_version": ARTIFACT_VERSION,
        "scenario": spec.to_dict(),
        "scenario_digest": spec.scenario_digest(),
        "seeds": list(seeds),
        "points": artifact_points,
    }


def write_trace(
    path: str,
    artifact: Dict[str, Any],
    results: Sequence[ExperimentResult],
) -> str:
    """Write the per-point trace streams as one JSONL file.

    Each event is tagged with the artifact point's label and seed, so
    ``repro.obs timeline``/``explain`` can select a point out of a
    multi-point scenario.  Point order matches the artifact.
    """
    from repro.obs.trace import write_events

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for point, result in zip(artifact["points"], results):
            write_events(handle, result.trace, point=point["label"], seed=point["seed"])
    return path


def write_artifact(artifact: Dict[str, Any], path: str) -> str:
    """Write ``artifact`` as pretty-printed JSON; returns the path."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def default_artifact_path(spec: ScenarioSpec, suffix: str = "") -> str:
    """``scenario-<name>[<suffix>].json`` in the current directory."""
    return f"scenario-{spec.name}{suffix}.json"
