"""The attack x scoring-rule ablation matrix.

The scenario registry supplies the attacks; the scoring-rule registry
supplies the rules; this module runs the full cross product through the
sweep engine and distills, per cell, the reputation reaction (rounds
until demotion, demoted-epoch counts, leader-slot shares) next to the
performance numbers — the systematic evaluation harness the single
curated scenarios build toward.

The matrix uses the scenario engine's ``scoring_rules`` sweep axis: each
attack spec is re-validated with ``scoring_rules=<rules>`` and
``protocols=("hammerhead",)`` (the static Bullshark baseline has no
reputation to ablate), compiled once per rule, and all cells of all
attacks run as one sweep batch.

``python -m repro.scenarios matrix`` is the CLI entry point; the
``scenario_matrix`` stage of ``benchmarks/run_bench.py`` runs a smoke
subset and the regression gate compares its cell digests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.scoring import scoring_rule_names
from repro.errors import ConfigurationError
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import CompiledPoint, ScenarioSpec, compile_spec
from repro.sim.experiment import ExperimentResult
from repro.sim.sweep import SweepEngine

MATRIX_VERSION = 1

#: The default attack set: every registry scenario whose adversary the
#: scoring rules are supposed to see (plus the canonical inert gamer,
#: kept in deliberately — "no rule reacts" is the measurement there).
DEFAULT_MATRIX_ATTACKS = (
    "targeted-leader-attack",
    "reputation-gamer",
    "reputation-gamer-strict",
    "lazy-leader",
    "adaptive-dos",
    "colluding-silence",
    "coalition-gaming",
)


def matrix_spec(attack: str, rules: Sequence[str], smoke: bool = False) -> ScenarioSpec:
    """The sweep-ready spec of one matrix row (one attack, all rules)."""
    spec = get_scenario(attack)
    if smoke:
        spec = spec.smoke()
    return spec.with_overrides(
        protocols=("hammerhead",),
        scoring_rules=tuple(rules),
    )


def _cell_record(point: CompiledPoint, result: ExperimentResult, digest_source: str) -> Dict[str, Any]:
    reputation = result.reputation
    demotions = reputation.get("rounds_until_demotion", {})
    demoted_rounds = [r for r in demotions.values() if r is not None]
    observer = result.config.observer
    ordered_count, ordering_digest = result.ordering_digests[observer]
    return {
        "attack": point.scenario,
        "rule": point.scoring,
        "committee_size": point.committee_size,
        "load": point.load,
        "seed": result.config.seed,
        "label": f"{point.scenario}/{point.scoring} ({result.config.label()})",
        "scenario_digest": digest_source,
        "ordering_digest": ordering_digest,
        "ordered_count": ordered_count,
        "throughput_tps": round(result.report.throughput_tps, 3),
        "avg_latency_s": round(result.report.avg_latency_s, 4),
        "skipped_anchor_rounds": result.report.skipped_anchor_rounds,
        "schedule_changes": reputation.get("schedule_changes", 0),
        "faulty_validators": reputation.get("faulty_validators", []),
        "rounds_until_demotion": demotions,
        "demoted_epochs": reputation.get("demoted_epochs", {}),
        "faulty_slot_share_initial": reputation.get("faulty_slot_share_initial"),
        "faulty_slot_share_converged": reputation.get("faulty_slot_share_converged"),
        # Cross-cell comparison helpers.
        "culprits_demoted": len(demoted_rounds),
        "culprit_count": len(reputation.get("faulty_validators", [])),
        "first_demotion_round": min(demoted_rounds) if demoted_rounds else None,
    }


def run_matrix(
    attacks: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
    smoke: bool = False,
    parallelism: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the attack x rule matrix and return its artifact document."""
    attack_names = tuple(attacks) if attacks else DEFAULT_MATRIX_ATTACKS
    rule_names = tuple(rules) if rules else scoring_rule_names()
    if not rule_names:
        raise ConfigurationError("the matrix needs at least one scoring rule")
    row_specs: List[Tuple[str, ScenarioSpec]] = [
        (attack, matrix_spec(attack, rule_names, smoke=smoke)) for attack in attack_names
    ]
    points: List[Tuple[str, CompiledPoint]] = []
    for _attack, spec in row_specs:
        for point in compile_spec(spec):
            points.append((spec.scenario_digest(), point))
    results = SweepEngine(parallelism=parallelism).run(
        [point.config for _, point in points]
    )
    cells = [
        _cell_record(point, result, digest)
        for (digest, point), result in zip(points, results)
    ]
    return {
        "matrix_version": MATRIX_VERSION,
        "attacks": list(attack_names),
        "rules": list(rule_names),
        "smoke": bool(smoke),
        "row_digests": {attack: spec.scenario_digest() for attack, spec in row_specs},
        "cells": cells,
        "summary": summarize_matrix(cells),
    }


def summarize_matrix(cells: Sequence[Dict[str, Any]]) -> Dict[str, Dict[str, str]]:
    """attack -> rule -> a compact demotion verdict for each cell.

    ``"3/3@22"`` reads "all three culprits demoted, the first at round
    22"; ``"0/3"`` means the rule never reacted.  Multi-point rows (e.g.
    several committee sizes) keep the sharpest verdict (most culprits,
    earliest round).
    """
    grid: Dict[str, Dict[str, str]] = {}
    best: Dict[Tuple[str, str], Tuple[int, float]] = {}
    for cell in cells:
        key = (cell["attack"], cell["rule"])
        demoted = cell["culprits_demoted"]
        first = cell["first_demotion_round"]
        rank = (demoted, -(first if first is not None else float("inf")))
        if key in best and rank <= best[key]:
            continue
        best[key] = rank
        verdict = f"{demoted}/{cell['culprit_count']}"
        if first is not None:
            verdict += f"@{first}"
        grid.setdefault(cell["attack"], {})[cell["rule"]] = verdict
    return grid


def format_matrix_table(document: Dict[str, Any]) -> str:
    """A fixed-width attack x rule table of the summary grid."""
    rules = document["rules"]
    summary = document["summary"]
    attacks = document["attacks"]
    attack_width = max([len("attack \\ rule")] + [len(a) for a in attacks])
    widths = [max(len(rule), 8) for rule in rules]
    header = "  ".join(
        ["attack \\ rule".ljust(attack_width)]
        + [rule.rjust(width) for rule, width in zip(rules, widths)]
    )
    lines = [header, "-" * len(header)]
    for attack in attacks:
        row = summary.get(attack, {})
        lines.append(
            "  ".join(
                [attack.ljust(attack_width)]
                + [row.get(rule, "-").rjust(width) for rule, width in zip(rules, widths)]
            )
        )
    return "\n".join(lines)
