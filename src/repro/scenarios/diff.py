"""Compare two scenario artifacts (``python -m repro.scenarios diff``).

Artifacts (see :mod:`repro.scenarios.runner`) are reproducibility
documents: the spec echo, its deterministic ``scenario_digest``, and the
per-point reports and ordering digests.  Comparing two of them answers
the regression-triage question in one command:

* **Same scenario digest** — the runs came from the same scenario
  definition, so their ordering digests must match point for point; any
  mismatch is a real behavioural divergence.  Matching points also get a
  performance delta report (throughput / latency / ordered count).
* **Different scenario digests** — the runs measured different things;
  the diff explains *where* the specs differ instead of comparing
  numbers that are not comparable.

The comparison returns a non-zero exit code on any mismatch so CI can
chain it after a reproduction run.

**Prefix mode** (``--prefix``) relaxes the strict contract for artifact
pairs that legitimately diverge — e.g. the lossy-recovery scenario pair,
where certificate piggybacking changes post-loss-window DAG timing and
therefore the final ordering digests.  Instead of erroring on unequal
scenario digests, matched points are compared by their committed-prefix
checkpoint chains (:mod:`repro.obs.consistency`): the runs must agree on
every aligned checkpoint up to their genuine divergence, and the length
of the longest common committed prefix is reported (and gated by
``min_prefix``).  The strict mode stays the default — the CI
cross-backend gate depends on byte-identical digests.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.obs.consistency import checkpoint_chain, compare_prefixes

# Exit codes of the diff subcommand.
DIFF_MATCH = 0
DIFF_MISMATCH = 1


def load_artifact(path: str) -> Dict[str, Any]:
    """Load an artifact JSON, raising :class:`ConfigurationError` on junk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            artifact = json.load(handle)
    except OSError as error:
        raise ConfigurationError(f"cannot read artifact {path!r}: {error}") from None
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"artifact {path!r} is not valid JSON: {error}") from None
    if not isinstance(artifact, dict) or "scenario_digest" not in artifact:
        raise ConfigurationError(
            f"artifact {path!r} does not look like a scenario artifact "
            "(missing 'scenario_digest')"
        )
    return artifact


def _spec_differences(
    left: Mapping[str, Any], right: Mapping[str, Any], prefix: str = ""
) -> List[str]:
    """Human-readable nested differences between two spec dictionaries."""
    lines: List[str] = []
    for key in sorted(set(left) | set(right)):
        path = f"{prefix}{key}"
        if key not in left:
            lines.append(f"  only in right: {path} = {right[key]!r}")
        elif key not in right:
            lines.append(f"  only in left:  {path} = {left[key]!r}")
        elif left[key] != right[key]:
            if isinstance(left[key], Mapping) and isinstance(right[key], Mapping):
                lines.extend(_spec_differences(left[key], right[key], prefix=f"{path}."))
            else:
                lines.append(f"  {path}: {left[key]!r} -> {right[key]!r}")
    return lines


def _point_key(point: Mapping[str, Any]) -> Tuple[Any, ...]:
    """Identity of one artifact point inside a fixed scenario."""
    return (
        point.get("label"),
        point.get("seed"),
        point.get("committee_size"),
        point.get("protocol"),
        point.get("load"),
    )


def _report_value(point: Mapping[str, Any], field: str) -> Any:
    report = point.get("report") or {}
    return report.get(field)


def _delta_line(label: str, left: Any, right: Any, unit: str = "") -> str:
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        delta = right - left
        rel = f" ({100 * delta / left:+.1f}%)" if left else ""
        return f"      {label}: {left:.4g} -> {right:.4g}{rel}{unit}"
    return f"      {label}: {left!r} -> {right!r}"


def _prefix_chain(point: Mapping[str, Any]) -> List[Tuple[int, str]]:
    """The committed-prefix chain of one artifact point."""
    checkpoints = [
        (int(count), digest)
        for count, digest in (point.get("ordering_checkpoints") or ())
    ]
    final = (point.get("ordered_count") or 0, point.get("ordering_digest") or "")
    return checkpoint_chain(checkpoints, final)


def diff_artifacts(
    left: Mapping[str, Any],
    right: Mapping[str, Any],
    prefix: bool = False,
    min_prefix: int = 1,
) -> Tuple[int, List[str]]:
    """Compare two artifacts; returns ``(exit_code, report_lines)``.

    ``prefix`` switches to committed-prefix comparison (see the module
    docstring); ``min_prefix`` is the smallest acceptable common
    committed prefix (in ordered positions) for a point pair whose
    chains genuinely diverge.
    """
    lines: List[str] = []
    left_digest = left.get("scenario_digest")
    right_digest = right.get("scenario_digest")
    if left_digest != right_digest:
        if not prefix:
            lines.append(
                "scenario digests differ — the artifacts measured different scenarios:"
            )
            lines.append(f"  left:  {left_digest}")
            lines.append(f"  right: {right_digest}")
            spec_lines = _spec_differences(
                left.get("scenario") or {}, right.get("scenario") or {}
            )
            if spec_lines:
                lines.append("spec differences:")
                lines.extend(spec_lines)
            else:
                lines.append(
                    "specs echo identically; the digest difference comes from a "
                    "version bump of the digest scheme"
                )
            return DIFF_MISMATCH, lines
        lines.append(
            "scenario digests differ (allowed in prefix mode); spec differences:"
        )
        spec_lines = _spec_differences(
            left.get("scenario") or {}, right.get("scenario") or {}
        )
        lines.extend(spec_lines or ["  (none — digest scheme version bump)"])
    else:
        lines.append(f"scenario digest matches: {left_digest}")
    if prefix:
        return _diff_prefixes(left, right, min_prefix, lines)
    left_points = {_point_key(point): point for point in left.get("points") or ()}
    right_points = {_point_key(point): point for point in right.get("points") or ()}
    mismatched = 0
    compared = 0
    for key in sorted(set(left_points) | set(right_points), key=str):
        label = f"{key[0]} seed {key[1]}"
        left_point = left_points.get(key)
        right_point = right_points.get(key)
        if left_point is None or right_point is None:
            side = "left" if right_point is None else "right"
            lines.append(f"  [MISSING] {label}: only present in {side} artifact")
            mismatched += 1
            continue
        compared += 1
        left_ordering = left_point.get("ordering_digest")
        right_ordering = right_point.get("ordering_digest")
        if left_ordering != right_ordering:
            mismatched += 1
            lines.append(f"  [DIVERGED] {label}: ordering digests differ")
            lines.append(f"      left:  {left_ordering}")
            lines.append(f"      right: {right_ordering}")
            lines.append(
                _delta_line(
                    "ordered_count",
                    left_point.get("ordered_count"),
                    right_point.get("ordered_count"),
                )
            )
        else:
            lines.append(f"  [OK] {label}: ordering digest identical")
        for field, unit in (
            ("throughput_tps", " tx/s"),
            ("avg_latency_s", " s"),
            ("committed_transactions", ""),
        ):
            left_value = _report_value(left_point, field)
            right_value = _report_value(right_point, field)
            if left_value != right_value:
                lines.append(_delta_line(field, left_value, right_value, unit))
    if not compared and not mismatched:
        lines.append("  no points to compare")
    lines.append(
        f"{compared} point(s) compared, {mismatched} mismatched"
    )
    return (DIFF_MISMATCH if mismatched else DIFF_MATCH), lines


def _diff_prefixes(
    left: Mapping[str, Any],
    right: Mapping[str, Any],
    min_prefix: int,
    lines: List[str],
) -> Tuple[int, List[str]]:
    """Committed-prefix comparison of matched points (prefix mode)."""
    left_points = {_point_key(point): point for point in left.get("points") or ()}
    right_points = {_point_key(point): point for point in right.get("points") or ()}
    mismatched = 0
    compared = 0
    for key in sorted(set(left_points) | set(right_points), key=str):
        label = f"{key[0]} seed {key[1]}"
        left_point = left_points.get(key)
        right_point = right_points.get(key)
        if left_point is None or right_point is None:
            side = "left" if right_point is None else "right"
            lines.append(f"  [MISSING] {label}: only present in {side} artifact")
            mismatched += 1
            continue
        compared += 1
        comparison = compare_prefixes(
            _prefix_chain(left_point), _prefix_chain(right_point)
        )
        if comparison.consistent:
            lines.append(
                f"  [OK] {label}: committed prefixes consistent "
                f"({comparison.describe()})"
            )
        elif comparison.common_prefix >= min_prefix:
            lines.append(f"  [PREFIX] {label}: {comparison.describe()}")
        else:
            mismatched += 1
            lines.append(
                f"  [DIVERGED] {label}: common committed prefix "
                f"{comparison.common_prefix} below the required {min_prefix} "
                f"({comparison.describe()})"
            )
    if not compared and not mismatched:
        lines.append("  no points to compare")
    lines.append(f"{compared} point(s) compared, {mismatched} mismatched")
    return (DIFF_MISMATCH if mismatched else DIFF_MATCH), lines


def diff_artifact_files(
    left_path: str,
    right_path: str,
    prefix: bool = False,
    min_prefix: int = 1,
) -> Tuple[int, List[str]]:
    """File-level wrapper around :func:`diff_artifacts`."""
    return diff_artifacts(
        load_artifact(left_path),
        load_artifact(right_path),
        prefix=prefix,
        min_prefix=min_prefix,
    )
