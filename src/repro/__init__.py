"""HammerHead: Leader Reputation for Dynamic Scheduling — Python reproduction.

This package reproduces the system described in "HammerHead: Leader
Reputation for Dynamic Scheduling" (Tsimos, Kichidis, Sonnino,
Kokoris-Kogias; ICDCS 2024).  It contains:

* a discrete-event simulation substrate (network, storage, crypto);
* a Narwhal-style DAG mempool and the Bullshark consensus protocol;
* the HammerHead reputation-based dynamic leader schedule (the paper's
  contribution) and the static round-robin baseline;
* fault injection, workload generation, and metrics;
* an experiment harness regenerating every figure of the paper's
  evaluation;
* a scenario engine (:mod:`repro.scenarios`): declarative, serializable
  adversarial/network scenario specs, a registry of curated scenarios,
  and a CLI runner.

Quickstart::

    from repro import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(
        protocol="hammerhead",
        committee_size=10,
        faults=3,
        input_load_tps=500,
        duration=20.0,
    ))
    print(result.report.throughput_tps, result.report.avg_latency_s)

Scenarios (see :mod:`repro.scenarios` for the full catalogue)::

    python -m repro.scenarios list
    python -m repro.scenarios run sui-incident

    from repro import get_scenario, run_scenario
    artifact = run_scenario(get_scenario("mixed-adversary").smoke())
"""

from repro.committee import Committee, equal_stake, geometric_stake, zipfian_stake
from repro.core import (
    CarouselScoring,
    CommitCountPolicy,
    HammerHeadScheduleManager,
    HammerHeadScoring,
    ReputationScores,
    RoundBasedPolicy,
    ShoalScoring,
    StaticScheduleManager,
    compute_next_schedule,
)
from repro.consensus import BullsharkConsensus, CommittedSubDag, OrderedVertex
from repro.dag import DagStore, Vertex, genesis_vertices, make_vertex
from repro.metrics import (
    ExecutionModel,
    LatencyStats,
    LeaderUtilizationStats,
    MetricsCollector,
    PerformanceReport,
    format_table,
)
from repro.network import (
    GeoLatencyModel,
    Network,
    PartialSynchrony,
    Simulator,
    UniformLatencyModel,
)
from repro.node import NodeConfig, ValidatorNode
from repro.schedule import LeaderSchedule, initial_schedule
from repro.sim import (
    ExperimentConfig,
    ExperimentResult,
    SimulationRunner,
    compare_systems,
    latency_throughput_curve,
    run_experiment,
)
from repro.workload import LoadGenerator, LoadPhase, Transaction, spawn_load, spawn_phased_load

# Imported last: the scenario engine builds on every layer above.
from repro.scenarios import (
    ScenarioSpec,
    compile_spec,
    get_scenario,
    run_scenario,
    scenario_names,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # Committee / stake
    "Committee",
    "equal_stake",
    "geometric_stake",
    "zipfian_stake",
    # Core (HammerHead)
    "ReputationScores",
    "HammerHeadScoring",
    "ShoalScoring",
    "CarouselScoring",
    "CommitCountPolicy",
    "RoundBasedPolicy",
    "compute_next_schedule",
    "HammerHeadScheduleManager",
    "StaticScheduleManager",
    # DAG / consensus
    "DagStore",
    "Vertex",
    "make_vertex",
    "genesis_vertices",
    "BullsharkConsensus",
    "CommittedSubDag",
    "OrderedVertex",
    # Schedules
    "LeaderSchedule",
    "initial_schedule",
    # Network / simulation substrate
    "Simulator",
    "Network",
    "GeoLatencyModel",
    "UniformLatencyModel",
    "PartialSynchrony",
    # Node
    "NodeConfig",
    "ValidatorNode",
    # Workload
    "Transaction",
    "LoadGenerator",
    "spawn_load",
    "LoadPhase",
    "spawn_phased_load",
    # Metrics
    "MetricsCollector",
    "ExecutionModel",
    "LatencyStats",
    "LeaderUtilizationStats",
    "PerformanceReport",
    "format_table",
    # Experiments
    "ExperimentConfig",
    "ExperimentResult",
    "SimulationRunner",
    "run_experiment",
    "latency_throughput_curve",
    "compare_systems",
    # Scenarios
    "ScenarioSpec",
    "compile_spec",
    "get_scenario",
    "run_scenario",
    "scenario_names",
]
