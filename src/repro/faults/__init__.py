"""Fault injection: crash, crash-recovery, degraded, and Byzantine faults.

Fault plans are declarative descriptions of what goes wrong during a run;
the simulation runner applies them to the network and the nodes at the
scheduled virtual times.  Byzantine *behavior* lives in
:mod:`repro.behavior` as composable policies; :class:`BehaviorFault`
installs them on a timeline (and :class:`VoteWithholdingFault` survives
as a shim over the withholding policy).
"""

from repro.faults.base import FaultPlan, FaultInjector
from repro.faults.behavior import BehaviorFault
from repro.faults.crash import CrashFault, CrashRecoveryFault, crash_last_f
from repro.faults.slow import SlowValidatorFault, degrade_fraction
from repro.faults.byzantine import VoteWithholdingFault
from repro.faults.partition import (
    NetworkDisturbanceFault,
    PartitionPlan,
    isolate_tail_fraction,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "BehaviorFault",
    "CrashFault",
    "CrashRecoveryFault",
    "crash_last_f",
    "SlowValidatorFault",
    "degrade_fraction",
    "VoteWithholdingFault",
    "PartitionPlan",
    "NetworkDisturbanceFault",
    "isolate_tail_fraction",
]
