"""Degraded ("slow") validators.

The introduction describes a Sui mainnet incident where roughly 10% of
validators became less responsive for two hours, pushing p95 latency from
3 s to 4.6 s even at low load.  :class:`SlowValidatorFault` reproduces the
pattern by adding inbound/outbound delay to the affected validators'
links for a bounded period.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.committee import Committee
from repro.faults.base import FaultPlan, tail_validators
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.node.validator import ValidatorNode
from repro.types import SimTime, ValidatorId


@dataclasses.dataclass
class SlowValidatorFault(FaultPlan):
    """Degrade the links of ``validators`` by ``extra_delay`` seconds."""

    validators: Sequence[ValidatorId]
    extra_delay: SimTime = 0.5
    start: SimTime = 0.0
    end: Optional[SimTime] = None

    def affected_validators(self) -> Sequence[ValidatorId]:
        return tuple(self.validators)

    def schedule(
        self,
        simulator: Simulator,
        network: Network,
        nodes: Dict[ValidatorId, ValidatorNode],
    ) -> None:
        def degrade() -> None:
            for validator in self.validators:
                network.set_link_degradation(
                    validator,
                    inbound_extra=self.extra_delay,
                    outbound_extra=self.extra_delay,
                )

        def restore() -> None:
            for validator in self.validators:
                network.set_link_degradation(validator, inbound_extra=0.0, outbound_extra=0.0)

        simulator.schedule_at(max(self.start, simulator.now), degrade)
        if self.end is not None:
            simulator.schedule_at(max(self.end, simulator.now), restore)

    def describe(self) -> str:
        window = f"from t={self.start:.1f}s"
        if self.end is not None:
            window += f" to t={self.end:.1f}s"
        return f"slow down {list(self.validators)} by {self.extra_delay:.2f}s {window}"


def degrade_fraction(
    committee: Committee,
    fraction: float = 0.10,
    extra_delay: SimTime = 0.5,
    start: SimTime = 0.0,
    end: Optional[SimTime] = None,
    protect: Sequence[ValidatorId] = (0,),
) -> SlowValidatorFault:
    """Degrade roughly ``fraction`` of the committee (the Sui incident shape)."""
    count = max(1, int(round(fraction * committee.size)))
    return SlowValidatorFault(
        validators=tail_validators(committee, count, protect),
        extra_delay=extra_delay,
        start=start,
        end=end,
    )
