"""Network-level disturbances: partitions and jitter/loss windows.

Unlike the per-validator faults (crash, slow, Byzantine), these plans
disturb the network fabric itself for a bounded window of virtual time:

* :class:`PartitionPlan` splits the committee into groups; messages
  crossing a group boundary are dropped until the partition heals.
* :class:`NetworkDisturbanceFault` adds random jitter to every delivery
  and/or drops messages with a fixed probability.

Both restore the healthy network when their window closes; the
synchronizer's fetch-retry path then repairs any missing DAG history, so
liveness resumes after the window (the partial-synchrony story of the
paper, acted out by the adversary).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from repro.committee import Committee
from repro.faults.base import FaultPlan, tail_validators
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.node.validator import ValidatorNode
from repro.types import SimTime, ValidatorId


@dataclasses.dataclass
class PartitionPlan(FaultPlan):
    """Partition the committee into ``groups`` from ``start`` to ``end``.

    Validators not listed in any group form one implicit extra group (they
    keep talking to each other but to nobody else).  ``end=None`` leaves
    the partition in place for the rest of the run.
    """

    groups: Sequence[Sequence[ValidatorId]]
    start: SimTime = 0.0
    end: Optional[SimTime] = None

    def __post_init__(self) -> None:
        if self.end is not None and self.end <= self.start:
            raise ValueError("a partition must heal after it forms")
        seen = set()
        for group in self.groups:
            for validator in group:
                if validator in seen:
                    raise ValueError(f"validator {validator} appears in two groups")
                seen.add(validator)

    def affected_validators(self) -> Sequence[ValidatorId]:
        return tuple(validator for group in self.groups for validator in group)

    def schedule(
        self,
        simulator: Simulator,
        network: Network,
        nodes: Dict[ValidatorId, ValidatorNode],
    ) -> None:
        def split() -> None:
            network.set_partition([tuple(group) for group in self.groups])

        def heal() -> None:
            network.clear_partition()

        simulator.schedule_at(max(self.start, simulator.now), split)
        if self.end is not None:
            simulator.schedule_at(max(self.end, simulator.now), heal)

    def describe(self) -> str:
        shape = " | ".join(str(list(group)) for group in self.groups)
        window = f"from t={self.start:.1f}s"
        if self.end is not None:
            window += f" to t={self.end:.1f}s"
        return f"partition {shape} {window}"


@dataclasses.dataclass
class NetworkDisturbanceFault(FaultPlan):
    """Add jitter and/or message loss to the whole fabric for a window."""

    jitter: SimTime = 0.0
    loss_rate: float = 0.0
    start: SimTime = 0.0
    end: Optional[SimTime] = None

    def __post_init__(self) -> None:
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("the loss rate must lie in [0, 1)")
        if self.end is not None and self.end <= self.start:
            raise ValueError("a disturbance window must close after it opens")

    def affected_validators(self) -> Sequence[ValidatorId]:
        # The disturbance is fabric-wide, not tied to specific validators.
        return ()

    def schedule(
        self,
        simulator: Simulator,
        network: Network,
        nodes: Dict[ValidatorId, ValidatorNode],
    ) -> None:
        # Token-based so overlapping disturbance windows compose: closing
        # this window removes only its own contribution.
        token_box: Dict[str, int] = {}

        def disturb() -> None:
            token_box["token"] = network.add_disturbance(
                jitter=self.jitter, loss_rate=self.loss_rate
            )

        def calm() -> None:
            if "token" in token_box:
                network.remove_disturbance(token_box.pop("token"))

        simulator.schedule_at(max(self.start, simulator.now), disturb)
        if self.end is not None:
            simulator.schedule_at(max(self.end, simulator.now), calm)

    def describe(self) -> str:
        parts = []
        if self.jitter > 0:
            parts.append(f"jitter {self.jitter:.2f}s")
        if self.loss_rate > 0:
            parts.append(f"loss {self.loss_rate:.0%}")
        window = f"from t={self.start:.1f}s"
        if self.end is not None:
            window += f" to t={self.end:.1f}s"
        return f"{' + '.join(parts) or 'no-op disturbance'} {window}"


def isolate_tail_fraction(
    committee: Committee,
    fraction: float = 0.25,
    start: SimTime = 0.0,
    end: Optional[SimTime] = None,
    protect: Sequence[ValidatorId] = (0,),
) -> PartitionPlan:
    """Asymmetric partition: cut the tail ``fraction`` of the committee off.

    The highest-indexed validators (never those in ``protect``) form the
    minority side; everyone else stays in the implicit majority group, so
    the majority keeps a quorum and continues committing while the
    minority stalls until the partition heals.
    """
    count = max(1, int(round(fraction * committee.size)))
    minority: Tuple[ValidatorId, ...] = tail_validators(committee, count, protect)
    return PartitionPlan(groups=(minority,), start=start, end=end)
