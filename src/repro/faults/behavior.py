"""Behavior faults: put adversarial policies on a timeline.

A :class:`BehaviorFault` installs a fresh
:class:`~repro.behavior.policy.BehaviorPolicy` (from a per-validator
factory) on each selected validator at ``start`` and, when ``end`` is
given, reverts the validators to honesty when the window closes.  The
factory pattern keeps plans picklable for the parallel sweep engine:
pass a policy class or a :func:`functools.partial` over one, never a
lambda or a pre-built instance (policies bind to a single node).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Sequence

from repro.behavior.policy import HONEST, BehaviorPolicy
from repro.faults.base import FaultPlan
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.node.validator import ValidatorNode
from repro.types import SimTime, ValidatorId

# A no-argument constructor of a policy instance.  Must be picklable
# (module-level class, or functools.partial over one).
PolicyFactory = Callable[[], BehaviorPolicy]


@dataclasses.dataclass
class BehaviorFault(FaultPlan):
    """Equip ``validators`` with ``policy_factory()`` policies for a window."""

    validators: Sequence[ValidatorId]
    policy_factory: PolicyFactory
    start: SimTime = 0.0
    end: Optional[SimTime] = None

    def __post_init__(self) -> None:
        if self.end is not None and self.end <= self.start:
            raise ValueError("a behavior window must close after it opens")

    def affected_validators(self) -> Sequence[ValidatorId]:
        return tuple(self.validators)

    def schedule(
        self,
        simulator: Simulator,
        network: Network,
        nodes: Dict[ValidatorId, ValidatorNode],
    ) -> None:
        def install() -> None:
            for validator in self.validators:
                nodes[validator].set_behavior(self.policy_factory())

        def restore() -> None:
            for validator in self.validators:
                nodes[validator].set_behavior(HONEST)

        simulator.schedule_at(max(self.start, simulator.now), install)
        if self.end is not None:
            simulator.schedule_at(max(self.end, simulator.now), restore)

    def describe(self) -> str:
        window = f"from t={self.start:.1f}s"
        if self.end is not None:
            window += f" to t={self.end:.1f}s"
        return (
            f"behavior {self.policy_factory().describe()} on "
            f"{list(self.validators)} {window}"
        )
