"""Behavior faults: put adversarial policies on a timeline.

A :class:`BehaviorFault` installs a fresh
:class:`~repro.behavior.policy.BehaviorPolicy` (from a per-validator
factory) on each selected validator at ``start`` and, when ``end`` is
given, reverts the validators to honesty when the window closes.  The
factory pattern keeps plans picklable for the parallel sweep engine:
pass a policy class or a :func:`functools.partial` over one, never a
lambda or a pre-built instance (policies bind to a single node).

Two guarantees the scenario layer leans on:

* **Coalitions.**  With ``coordinated=True`` the fault creates one
  :class:`~repro.behavior.coordination.AdversaryCoordinator` per window
  at install time and joins every member policy to it (policies without
  a ``join`` hook are installed as-is), so colluding policies share
  deterministic per-run state without the plan itself having to carry
  unpicklable objects.
* **Deterministic restore.**  The window-close restore only reverts a
  validator whose *current* policy is the one this fault installed.
  Abutting windows (one fault's ``end`` equal to another's ``start``,
  firing in either order) and overlapping installs therefore converge to
  the same final policy regardless of event insertion order — the old
  unconditional restore was a last-writer-wins race.  Truly overlapping
  windows on the same validator are rejected by the scenario validator
  (:func:`validate_behavior_windows`): the later install wins while both
  are open, which is almost never what a spec author meant.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.behavior.policy import HONEST, BehaviorPolicy
from repro.faults.base import FaultPlan
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.node.validator import ValidatorNode
from repro.obs.trace import NULL_TRACER
from repro.types import SimTime, ValidatorId

# A no-argument constructor of a policy instance.  Must be picklable
# (module-level class, or functools.partial over one).
PolicyFactory = Callable[[], BehaviorPolicy]


@dataclasses.dataclass
class BehaviorFault(FaultPlan):
    """Equip ``validators`` with ``policy_factory()`` policies for a window."""

    validators: Sequence[ValidatorId]
    policy_factory: PolicyFactory
    start: SimTime = 0.0
    end: Optional[SimTime] = None
    # Create one AdversaryCoordinator per window and join every member's
    # policy to it (coalition attacks).
    coordinated: bool = False

    def __post_init__(self) -> None:
        if self.end is not None and self.end <= self.start:
            raise ValueError("a behavior window must close after it opens")

    def affected_validators(self) -> Sequence[ValidatorId]:
        return tuple(self.validators)

    def schedule(
        self,
        simulator: Simulator,
        network: Network,
        nodes: Dict[ValidatorId, ValidatorNode],
    ) -> None:
        # Policies installed by *this* window, so the restore can tell
        # its own installs apart from a later fault's (identity check —
        # the deterministic-restore guarantee in the module docstring).
        installed: Dict[ValidatorId, BehaviorPolicy] = {}
        # Deterministic window tag pairing open/close trace events (no
        # two windows share validators and start: overlap validation).
        window_tag = f"{'-'.join(str(v) for v in sorted(self.validators))}@{self.start:g}"

        def install() -> None:
            policies = {validator: self.policy_factory() for validator in self.validators}
            if self.coordinated:
                # Imported here: the coordination module pulls in the
                # adversarial policies, which plain behavior faults do
                # not need.
                from repro.behavior.coordination import AdversaryCoordinator

                # The duty-rotation throttle lives on the policies (the
                # factory bakes it in); the shared coordinator must carry
                # the same stride or the rotation the spec configured
                # would silently degenerate to attack-every-anchor.
                first = next(iter(policies.values()))
                coordinator = AdversaryCoordinator(
                    tuple(self.validators),
                    stride=max(1, int(getattr(first, "stride", 1))),
                )
                for policy in policies.values():
                    join = getattr(policy, "join", None)
                    if join is not None:
                        join(coordinator)
            for validator, policy in policies.items():
                installed[validator] = policy
                nodes[validator].set_behavior(policy)
            # ``network`` may be absent when a plan is exercised against
            # bare stand-in nodes (unit tests); no network, no tracer.
            tracer = network.tracer if network is not None else NULL_TRACER
            if tracer.enabled:
                tracer.emit(
                    "behavior_window_open",
                    validators=sorted(self.validators),
                    policy=next(iter(policies.values())).describe(),
                    coordinated=self.coordinated,
                    window=window_tag,
                )

        def restore() -> None:
            restored = []
            for validator in self.validators:
                node = nodes[validator]
                if node.behavior is installed.get(validator):
                    node.set_behavior(HONEST)
                    restored.append(validator)
            tracer = network.tracer if network is not None else NULL_TRACER
            if tracer.enabled and restored:
                tracer.emit(
                    "behavior_window_close",
                    validators=sorted(restored),
                    window=window_tag,
                )

        simulator.schedule_at(max(self.start, simulator.now), install)
        if self.end is not None:
            simulator.schedule_at(max(self.end, simulator.now), restore)

    def describe(self) -> str:
        window = f"from t={self.start:.1f}s"
        if self.end is not None:
            window += f" to t={self.end:.1f}s"
        coalition = " (coordinated coalition)" if self.coordinated else ""
        return (
            f"behavior {self.policy_factory().describe()} on "
            f"{list(self.validators)}{coalition} {window}"
        )


def validate_behavior_windows(
    windows: Iterable[Tuple[Sequence[ValidatorId], SimTime, Optional[SimTime], str]],
) -> None:
    """Reject truly overlapping behavior windows on a shared validator.

    ``windows`` is an iterable of ``(validators, start, end, label)``
    tuples with concrete (resolved) times; ``end=None`` means the window
    stays open for the rest of the run.  Abutting windows (``end ==
    start``) are fine — the identity-checked restore makes them
    deterministic — but windows that genuinely overlap in time on the
    same validator enact an ambiguous adversary and raise ``ValueError``
    (the scenario layer converts this into its configuration error).
    """
    entries = [
        (frozenset(validators), float(start), end if end is None else float(end), label)
        for validators, start, end, label in windows
    ]
    for index, (members_a, start_a, end_a, label_a) in enumerate(entries):
        for members_b, start_b, end_b, label_b in entries[index + 1 :]:
            shared = members_a & members_b
            if not shared:
                continue
            # Overlap test on half-open windows [start, end).
            a_end = float("inf") if end_a is None else end_a
            b_end = float("inf") if end_b is None else end_b
            if start_a < b_end and start_b < a_end:
                raise ValueError(
                    f"behavior windows {label_a!r} and {label_b!r} overlap on "
                    f"validator(s) {sorted(shared)}: windows on the same "
                    "validator must not overlap (abutting is allowed)"
                )
