"""Fault plan infrastructure."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.node.validator import ValidatorNode
from repro.types import ValidatorId


class FaultPlan:
    """One fault affecting one or more validators.

    Subclasses implement :meth:`schedule`, which registers the virtual-time
    events that enact the fault.
    """

    def affected_validators(self) -> Sequence[ValidatorId]:
        raise NotImplementedError

    def schedule(
        self,
        simulator: Simulator,
        network: Network,
        nodes: Dict[ValidatorId, ValidatorNode],
    ) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class FaultInjector:
    """Applies a collection of fault plans to a running simulation."""

    def __init__(self, plans: Sequence[FaultPlan] = ()) -> None:
        self.plans: List[FaultPlan] = list(plans)

    def add(self, plan: FaultPlan) -> None:
        self.plans.append(plan)

    def schedule_all(
        self,
        simulator: Simulator,
        network: Network,
        nodes: Dict[ValidatorId, ValidatorNode],
    ) -> None:
        for plan in self.plans:
            plan.schedule(simulator, network, nodes)

    def affected_validators(self) -> List[ValidatorId]:
        affected: List[ValidatorId] = []
        for plan in self.plans:
            for validator in plan.affected_validators():
                if validator not in affected:
                    affected.append(validator)
        return affected

    def describe(self) -> str:
        if not self.plans:
            return "no faults"
        return "; ".join(plan.describe() for plan in self.plans)
