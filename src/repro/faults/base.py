"""Fault plan infrastructure."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.committee import Committee
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.node.validator import ValidatorNode
from repro.types import ValidatorId


def tail_validators(
    committee: Committee,
    count: int,
    protect: Sequence[ValidatorId] = (0,),
) -> Tuple[ValidatorId, ...]:
    """The ``count`` highest-indexed validators, observer protected.

    The single definition of the benchmarking convention every selector in
    this package follows (crash-last-f, degrade-fraction, isolate-tail,
    and the scenario compiler): pick from the top of the index range,
    never selecting validators in ``protect``.
    """
    candidates = [
        validator for validator in reversed(committee.validators) if validator not in protect
    ]
    return tuple(candidates[:count])


def head_validators(
    committee: Committee,
    count: int,
    protect: Sequence[ValidatorId] = (0,),
) -> Tuple[ValidatorId, ...]:
    """The ``count`` lowest-indexed validators, observer protected.

    The mirror convention of :func:`tail_validators`, used to pick the
    *victims* of targeted behaviors (equivocation, selective silence):
    attackers come from the tail, victims from the head, so the two sets
    never overlap until they meet in the middle.
    """
    candidates = [
        validator for validator in committee.validators if validator not in protect
    ]
    return tuple(candidates[:count])


class FaultPlan:
    """One fault affecting one or more validators.

    Subclasses implement :meth:`schedule`, which registers the virtual-time
    events that enact the fault.
    """

    def affected_validators(self) -> Sequence[ValidatorId]:
        """Validators this plan touches.

        Defaults to the plan's ``validators`` field (empty for
        fabric-wide plans without one): the injector calls this on every
        run now that reputation metrics consume the faulty set, so a
        subclass that only implements :meth:`schedule` must not crash at
        result-build time.
        """
        return tuple(getattr(self, "validators", ()))

    def schedule(
        self,
        simulator: Simulator,
        network: Network,
        nodes: Dict[ValidatorId, ValidatorNode],
    ) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class FaultInjector:
    """Applies a collection of fault plans to a running simulation."""

    def __init__(self, plans: Sequence[FaultPlan] = ()) -> None:
        self.plans: List[FaultPlan] = list(plans)

    def add(self, plan: FaultPlan) -> None:
        self.plans.append(plan)

    def schedule_all(
        self,
        simulator: Simulator,
        network: Network,
        nodes: Dict[ValidatorId, ValidatorNode],
    ) -> None:
        for plan in self.plans:
            plan.schedule(simulator, network, nodes)

    def affected_validators(self) -> List[ValidatorId]:
        affected: List[ValidatorId] = []
        for plan in self.plans:
            # Duck-typed plans (tests, external tooling) may implement
            # only ``schedule``; fall back to their ``validators`` field.
            selector = getattr(plan, "affected_validators", None)
            validators = selector() if selector is not None else getattr(plan, "validators", ())
            for validator in validators:
                if validator not in affected:
                    affected.append(validator)
        return affected

    def describe(self) -> str:
        if not self.plans:
            return "no faults"
        return "; ".join(plan.describe() for plan in self.plans)
