"""Crash and crash-recovery faults.

The paper's Figure 2 crashes the maximum tolerable number of validators
(f = 3, 16, 33 for committees of 10, 50, 100) for the whole run.  The
crash-recovery variant models the introduction's scenario of validators
that go down for maintenance and later come back.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.committee import Committee
from repro.faults.base import FaultPlan, tail_validators
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.node.validator import ValidatorNode
from repro.types import SimTime, ValidatorId


@dataclasses.dataclass
class CrashFault(FaultPlan):
    """Crash ``validators`` at ``at_time`` and never recover them."""

    validators: Sequence[ValidatorId]
    at_time: SimTime = 0.0

    def affected_validators(self) -> Sequence[ValidatorId]:
        return tuple(self.validators)

    def schedule(
        self,
        simulator: Simulator,
        network: Network,
        nodes: Dict[ValidatorId, ValidatorNode],
    ) -> None:
        def crash_all() -> None:
            for validator in self.validators:
                nodes[validator].crash()

        simulator.schedule_at(max(self.at_time, simulator.now), crash_all)

    def describe(self) -> str:
        return f"crash {list(self.validators)} at t={self.at_time:.1f}s"


@dataclasses.dataclass
class CrashRecoveryFault(FaultPlan):
    """Crash ``validators`` at ``crash_at`` and recover them at ``recover_at``."""

    validators: Sequence[ValidatorId]
    crash_at: SimTime
    recover_at: SimTime

    def __post_init__(self) -> None:
        if self.recover_at <= self.crash_at:
            raise ValueError("recovery must happen after the crash")

    def affected_validators(self) -> Sequence[ValidatorId]:
        return tuple(self.validators)

    def schedule(
        self,
        simulator: Simulator,
        network: Network,
        nodes: Dict[ValidatorId, ValidatorNode],
    ) -> None:
        def crash_all() -> None:
            for validator in self.validators:
                nodes[validator].crash()

        def recover_all() -> None:
            for validator in self.validators:
                nodes[validator].recover()

        simulator.schedule_at(max(self.crash_at, simulator.now), crash_all)
        simulator.schedule_at(max(self.recover_at, simulator.now), recover_all)

    def describe(self) -> str:
        return (
            f"crash {list(self.validators)} at t={self.crash_at:.1f}s, "
            f"recover at t={self.recover_at:.1f}s"
        )


def crash_last_f(
    committee: Committee,
    faults: Optional[int] = None,
    at_time: SimTime = 0.0,
    protect: Sequence[ValidatorId] = (0,),
) -> CrashFault:
    """Crash ``faults`` validators (default: the maximum tolerable ``f``).

    Validators listed in ``protect`` (by default the observer, validator 0)
    are never selected; the highest-indexed validators are crashed first,
    matching the common benchmarking convention.
    """
    count = faults if faults is not None else committee.max_faulty
    if count > committee.max_faulty:
        raise ValueError(
            f"cannot crash {count} validators, the committee only tolerates "
            f"{committee.max_faulty}"
        )
    return CrashFault(validators=tail_validators(committee, count, protect), at_time=at_time)
