"""Byzantine behaviour: vote withholding.

HammerHead's scoring rule "discourag[es] Byzantine actors from withholding
their votes for honest leaders": a validator that systematically omits the
parent link to the leader loses reputation and eventually loses its own
leader slots.  :class:`VoteWithholdingFault` equips selected validators
with a parent filter that drops the leader's vertex from their edges.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.faults.base import FaultPlan
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.node.validator import ValidatorNode
from repro.types import Round, SimTime, ValidatorId, VertexId, is_anchor_round


@dataclasses.dataclass
class VoteWithholdingFault(FaultPlan):
    """Make ``validators`` withhold votes for every leader from ``at_time`` on."""

    validators: Sequence[ValidatorId]
    at_time: SimTime = 0.0

    def affected_validators(self) -> Sequence[ValidatorId]:
        return tuple(self.validators)

    def schedule(
        self,
        simulator: Simulator,
        network: Network,
        nodes: Dict[ValidatorId, ValidatorNode],
    ) -> None:
        def install() -> None:
            for validator in self.validators:
                node = nodes[validator]
                node.parent_filter = _make_withholding_filter(node)

        simulator.schedule_at(max(self.at_time, simulator.now), install)

    def describe(self) -> str:
        return f"vote withholding by {list(self.validators)} from t={self.at_time:.1f}s"


def _make_withholding_filter(node: ValidatorNode):
    """Drop the previous round's leader from the node's parent set."""

    def parent_filter(round_number: Round, parents: List[VertexId]) -> List[VertexId]:
        previous_round = round_number - 1
        if not is_anchor_round(previous_round):
            return parents
        leader = node.schedule_manager.leader_for_round(previous_round)
        leader_vertex = VertexId(round=previous_round, source=leader)
        filtered = [parent for parent in parents if parent != leader_vertex]
        # Never drop below the 2f+1 quorum the vertex structure requires;
        # if dropping the leader would break the quorum, vote anyway (the
        # adversary cannot forge a structurally invalid vertex and expect
        # honest validators to accept it).
        sources = {parent.source for parent in filtered}
        if node.committee.has_quorum(sources):
            return filtered
        return parents

    return parent_filter
