"""Byzantine behaviour: vote withholding (legacy entry point).

HammerHead's scoring rule "discourag[es] Byzantine actors from withholding
their votes for honest leaders".  The attack itself now lives in
:class:`repro.behavior.adversarial.VoteWithholdingPolicy`;
:class:`VoteWithholdingFault` survives as a thin shim that installs that
policy on the selected validators, keeping the historical constructor,
equality, and ``describe()`` text (and therefore every previously
recorded scenario digest) intact.  New attacks should use
:class:`repro.faults.behavior.BehaviorFault` with a policy factory
directly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

from repro.behavior.adversarial import VoteWithholdingPolicy
from repro.faults.base import FaultPlan
from repro.network.simulator import Simulator
from repro.network.transport import Network
from repro.node.validator import ValidatorNode
from repro.types import SimTime, ValidatorId


@dataclasses.dataclass
class VoteWithholdingFault(FaultPlan):
    """Make ``validators`` withhold votes for every leader from ``at_time`` on."""

    validators: Sequence[ValidatorId]
    at_time: SimTime = 0.0

    def affected_validators(self) -> Sequence[ValidatorId]:
        return tuple(self.validators)

    def schedule(
        self,
        simulator: Simulator,
        network: Network,
        nodes: Dict[ValidatorId, ValidatorNode],
    ) -> None:
        def install() -> None:
            for validator in self.validators:
                nodes[validator].set_behavior(VoteWithholdingPolicy())

        simulator.schedule_at(max(self.at_time, simulator.now), install)

    def describe(self) -> str:
        return f"vote withholding by {list(self.validators)} from t={self.at_time:.1f}s"
