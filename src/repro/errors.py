"""Exception hierarchy for the HammerHead reproduction.

Every error raised by the library derives from :class:`ReproError` so that
applications embedding the simulator can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An experiment, committee, or node was configured inconsistently."""


class CommitteeError(ConfigurationError):
    """The validator committee definition is invalid."""


class CryptoError(ReproError):
    """A signature or digest failed verification."""


class NetworkError(ReproError):
    """The simulated network was asked to do something impossible."""


class StorageError(ReproError):
    """The persistent store rejected an operation."""


class DagError(ReproError):
    """A DAG invariant (causal completeness, uniqueness) was violated."""


class EquivocationError(DagError):
    """Two different vertices claim the same (round, source) identity."""


class MissingParentError(DagError):
    """A vertex referenced a parent that is not present in the DAG."""


class ConsensusError(ReproError):
    """The consensus engine detected an internal inconsistency."""


class SafetyViolationError(ConsensusError):
    """Two honest validators ordered conflicting histories.

    This error is never expected to surface during a correct run; the test
    suite asserts it is not raised across randomized executions.
    """


class ScheduleError(ReproError):
    """A leader schedule was constructed or queried incorrectly."""


class BroadcastError(ReproError):
    """The reliable broadcast layer detected a protocol violation."""


class SimulationError(ReproError):
    """The discrete-event simulation harness was misused."""


class WorkloadError(ReproError):
    """A load generator was configured incorrectly."""
