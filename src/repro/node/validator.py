"""The validator node state machine.

The node glues the substrates together exactly the way the production
implementation does:

* it proposes one vertex per round, batching pending transactions;
* it disseminates vertices with the broadcast layer and inserts delivered
  vertices into its local DAG (fetching missing parents on demand);
* it advances rounds once a 2f+1 stake quorum of the current round is
  present, waiting up to ``leader_timeout`` for the anchor of even rounds
  (the Bullshark leader wait — the mechanism through which crashed leaders
  degrade the baseline);
* it runs the Bullshark commit rule on every insertion and feeds the
  ordered prefix to its schedule manager (static for the baseline,
  HammerHead for the paper's protocol);
* it persists vertices and consensus progress so a crashed validator can
  recover from its store.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.behavior import HONEST, BehaviorPolicy
from repro.committee import Committee
from repro.consensus.bullshark import BullsharkConsensus
from repro.consensus.committed import CommittedSubDag, OrderedVertex
from repro.core.manager import ScheduleManager
from repro.dag.store import DagStore
from repro.dag.vertex import Vertex, genesis_vertices, make_vertex
from repro.errors import ConfigurationError
from repro.network.events import EventHandle
from repro.network.transport import Network
from repro.core.manager import HammerHeadScheduleManager
from repro.obs.trace import NULL_TRACER, Tracer
from repro.node.config import NodeConfig
from repro.node.messages import ConsensusSnapshot, FetchRequest, FetchResponse
from repro.rbc.base import Delivery
from repro.rbc.bracha import BrachaBroadcast
from repro.rbc.certified import CertifiedBroadcast
from repro.storage.store import PersistentStore
from repro.types import Round, SimTime, ValidatorId, VertexId, is_anchor_round

# Legacy hook type for tampering with proposal parent selection.  New code
# expresses this (and the other behavioral decision points) through
# :class:`repro.behavior.BehaviorPolicy`; the attribute survives so tests
# and external tooling that patched ``node.parent_filter`` keep working.
ParentFilter = Callable[[Round, List[VertexId]], List[VertexId]]


class ValidatorNode:
    """One validator participating in the protocol."""

    # Observability is opt-in: the class attributes keep untraced runs on
    # the zero-overhead path (one falsy attribute load per decision site)
    # and keep ``__init__`` signatures — and thus pickling — untouched.
    _tracer: Tracer = NULL_TRACER
    _tracing: bool = False
    _registry = None

    def __init__(
        self,
        validator_id: ValidatorId,
        committee: Committee,
        network: Network,
        schedule_manager: ScheduleManager,
        config: Optional[NodeConfig] = None,
        store: Optional[PersistentStore] = None,
        schedule_manager_factory: Optional[Callable[[], ScheduleManager]] = None,
    ) -> None:
        self.id = validator_id
        self.committee = committee
        self.network = network
        self.config = (config if config is not None else NodeConfig()).validate()
        self.schedule_manager = schedule_manager
        # Used on crash-recovery to rebuild a clean manager whose state is
        # then reconstructed deterministically by replaying the stored DAG.
        self.schedule_manager_factory = schedule_manager_factory
        self.store = store if store is not None else PersistentStore(owner=validator_id)
        # Hot-path handle: one vertex is persisted per insertion.
        self._vertices_family = self.store.family(PersistentStore.CF_VERTICES)

        self.simulator = network.simulator
        # Behavior policy governing this validator's decision points
        # (parent selection, proposal timing, fan-out, ack participation,
        # fetch service).  The honest default is transparent: decision
        # points skip the policy entirely, so honest runs stay
        # byte-identical to a build without the policy layer.  Installed
        # before the broadcast protocol so the protocol can share it.
        self.behavior: BehaviorPolicy = HONEST
        self.dag = DagStore(committee)
        self.consensus = BullsharkConsensus(
            owner=validator_id,
            committee=committee,
            dag=self.dag,
            schedule_manager=schedule_manager,
            record_sequence=self.config.record_sequence,
        )
        self.consensus.clock = lambda: self.simulator.now

        self.broadcast_protocol = self._build_broadcast()
        self._message_handlers = self._build_message_handlers()

        # Transaction pool (FIFO).
        self.transaction_pool: Deque = deque()
        # Round progression state.
        self.current_round: Round = 0
        self.started = False
        self.crashed = False
        self.last_proposal_time: SimTime = float("-inf")
        self._advance_handle: Optional[EventHandle] = None
        self._anchor_timer_handle: Optional[EventHandle] = None
        self._anchor_timer_round: Optional[Round] = None
        self._anchor_timeout_expired = False
        # Synchronizer state: missing parent -> last request time.
        self._fetch_requested: Dict[VertexId, SimTime] = {}
        self._fetch_timer: Optional[EventHandle] = None
        # Legacy Byzantine hook; superseded by ``self.behavior`` but still
        # applied (after the policy) when external code sets it.
        self.parent_filter: Optional[ParentFilter] = None
        # Messages received before ``start()`` are buffered, not dropped:
        # with the tightest possible quorum (exactly 2f+1 alive validators)
        # a single lost acknowledgement would block certification forever.
        self._pre_start_buffer: List = []

        # Statistics.
        self.proposals_made = 0
        self.leader_timeouts_suffered = 0
        self.transactions_submitted = 0
        self.transactions_proposed = 0
        self.fetch_requests_sent = 0
        self.recoveries = 0

        self.network.register(validator_id, committee.region_of(validator_id), self._on_network_message)
        self.dag.on_insert(self._on_vertex_inserted)

    # -- observability ------------------------------------------------------------

    def install_observability(self, tracer: Tracer, registry=None) -> None:
        """Install a tracer (and optional instrumentation registry).

        Propagated into every protocol component the node owns; crash
        recovery rebuilds those components, so :meth:`recover` re-runs the
        propagation (``_tracing`` doubles as the "was observability ever
        installed" flag).
        """
        self._tracer = tracer
        self._tracing = tracer.enabled
        self._registry = registry
        self._propagate_observability()

    def _propagate_observability(self) -> None:
        self.dag.install_tracer(self._tracer, self.id)
        self.consensus.install_tracer(self._tracer)
        self.schedule_manager.install_tracer(self._tracer, self.id)
        self.broadcast_protocol.install_observability(self._tracer, self._registry)

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Insert genesis, enter round 1, and propose the first vertex."""
        if self.started:
            raise ConfigurationError(f"validator {self.id} was already started")
        for vertex in genesis_vertices(self.committee):
            self.dag.add(vertex)
            self._persist_vertex(vertex)
        self.started = True
        self._enter_round(1)
        buffered, self._pre_start_buffer = self._pre_start_buffer, []
        for sender, message in buffered:
            self._on_network_message(sender, message)

    def crash(self) -> None:
        """Crash the node: it stops proposing and drops all traffic."""
        if self.crashed:
            return
        self.crashed = True
        self.network.set_crashed(self.id, True)
        self._cancel_timers()

    def recover(self) -> None:
        """Recover from a crash by replaying the persistent store.

        The in-memory protocol state (DAG, consensus, schedule manager,
        broadcast layer) is rebuilt from the persisted vertices; because
        the commit rule and the schedule changes are deterministic
        functions of the DAG, the recovered node reconstructs an ordering
        consistent with its pre-crash one before resuming.  The validator
        then re-broadcasts its highest pre-crash proposal (same digest, so
        this is not equivocation) and relies on the synchronizer to catch
        up with rounds it missed while down.

        Known simplification: the production system also persists the
        acknowledgement votes it cast for other validators' proposals; the
        simulation does not, which is harmless in crash-only executions
        (there is no equivocation to protect against).
        """
        if not self.crashed:
            return
        self.recoveries += 1
        self.crashed = False
        self.network.set_crashed(self.id, False)
        if self.schedule_manager_factory is not None:
            self.schedule_manager = self.schedule_manager_factory()
        self._rebuild_from_store()
        self._rebuild_broadcast()
        if self._tracing or self._registry is not None:
            # The rebuild created fresh dag/consensus/broadcast objects
            # (and possibly a fresh schedule manager); re-thread the
            # observability hooks or the recovered node goes dark.
            self._propagate_observability()
        last_proposal = self._highest_persisted_proposal()
        self.last_proposal_time = self.simulator.now
        self._anchor_timeout_expired = False
        self._advance_handle = None
        self._anchor_timer_handle = None
        self._fetch_timer = None
        self._fetch_requested.clear()
        if last_proposal is None:
            self._enter_round(1)
            return
        self.current_round = last_proposal.round
        self.broadcast_protocol.broadcast(last_proposal, last_proposal.round)
        if is_anchor_round(self.current_round):
            self._start_anchor_timer(self.current_round)
        self._maybe_advance()

    def _rebuild_from_store(self) -> None:
        vertices = sorted(
            (value for _, value in self.store.family(PersistentStore.CF_VERTICES).items()),
            key=lambda vertex: (vertex.round, vertex.source),
        )
        self.dag = DagStore(self.committee)
        self.consensus = BullsharkConsensus(
            owner=self.id,
            committee=self.committee,
            dag=self.dag,
            schedule_manager=self.schedule_manager,
            record_sequence=self.config.record_sequence,
        )
        self.consensus.clock = lambda: self.simulator.now
        self.dag.on_insert(self._on_vertex_inserted_recovery)
        for vertex in vertices:
            self.dag.add(vertex)
        # Switch back to the live insertion callback for new traffic.
        self.dag.replace_insert_callbacks([self._on_vertex_inserted])

    def _build_broadcast(self):
        if self.config.broadcast == "certified":
            protocol = CertifiedBroadcast(
                self.id,
                self.committee,
                self.network,
                self._on_broadcast_delivery,
                batch_certificates=self.config.certificate_batching,
                piggyback_certificates=self.config.certificate_piggyback,
            )
        else:
            protocol = BrachaBroadcast(
                self.id, self.committee, self.network, self._on_broadcast_delivery
            )
        protocol.policy = self.behavior
        return protocol

    def set_behavior(self, policy: Optional[BehaviorPolicy]) -> None:
        """Install (or, with ``None``/honest, remove) a behavior policy.

        The policy is shared with the broadcast protocol so both layers
        consult the same object; fault plans call this on their timeline
        to turn a validator adversarial and back.
        """
        if policy is None:
            policy = HONEST
        previous = self.behavior
        if previous is not policy:
            previous.detach(self)
        self.behavior = policy
        policy.attach(self)
        self.broadcast_protocol.policy = policy

    def _rebuild_broadcast(self) -> None:
        self.broadcast_protocol = self._build_broadcast()
        self._message_handlers = self._build_message_handlers()

    def _highest_persisted_proposal(self) -> Optional[Vertex]:
        proposals = self.store.family("own_proposals")
        rounds = proposals.keys()
        if not rounds:
            return None
        return proposals.get(max(rounds))

    def _on_vertex_inserted_recovery(self, vertex: Vertex) -> None:
        """Replay path: run consensus but skip round-advancement side effects."""
        self.consensus.process_vertex(vertex)

    def _highest_quorum_round(self) -> Round:
        round_number = self.dag.highest_round()
        while round_number > 0 and not self.dag.has_quorum_at(round_number):
            round_number -= 1
        return round_number

    def _cancel_timers(self) -> None:
        for handle_name in ("_advance_handle", "_anchor_timer_handle", "_fetch_timer"):
            handle = getattr(self, handle_name)
            if handle is not None:
                self.simulator.cancel(handle)
                setattr(self, handle_name, None)

    # -- transactions ---------------------------------------------------------------

    def submit_transaction(self, transaction) -> None:
        """Accept a client transaction into the local pool."""
        if self.crashed:
            return
        self.transactions_submitted += 1
        self.transaction_pool.append(transaction)

    @property
    def pool_size(self) -> int:
        return len(self.transaction_pool)

    # -- round progression --------------------------------------------------------------

    def _enter_round(self, round_number: Round) -> None:
        if self.config.max_round is not None and round_number > self.config.max_round:
            return
        self.current_round = round_number
        self._anchor_timeout_expired = False
        self._propose(round_number)
        if is_anchor_round(round_number):
            self._start_anchor_timer(round_number)
        # Vertices for this round may already be in the DAG (fast peers).
        self._maybe_advance()

    def _propose(self, round_number: Round) -> None:
        if self.crashed:
            return
        parents = [vertex.id for vertex in self.dag.vertices_at(round_number - 1)]
        behavior = self.behavior
        if not behavior.transparent:
            honest_parents = parents
            parents = behavior.select_parents(round_number, parents)
            if self._tracing and set(parents) != set(honest_parents):
                self._tracer.emit(
                    "adversary_parents",
                    node=self.id,
                    round=round_number,
                    honest=len(honest_parents),
                    chosen=len(parents),
                )
        if self.parent_filter is not None:
            parents = self.parent_filter(round_number, parents)
        batch = self._next_batch()
        vertex = make_vertex(
            round_number,
            self.id,
            edges=parents,
            block=batch,
            created_at=self.simulator.now,
        )
        self.proposals_made += 1
        self.transactions_proposed += len(batch)
        self.last_proposal_time = self.simulator.now
        if self._tracing:
            self._tracer.emit(
                "vertex_proposed",
                node=self.id,
                round=round_number,
                parents=len(parents),
                batch=len(batch),
            )
        # Persist the proposal before broadcasting so that a recovering
        # validator re-broadcasts the same vertex instead of equivocating.
        self.store.family("own_proposals").put(round_number, vertex)
        if not behavior.transparent:
            delay = behavior.proposal_delay(round_number)
            if delay > 0.0:
                if self._tracing:
                    self._tracer.emit(
                        "adversary_proposal_delay",
                        node=self.id,
                        round=round_number,
                        delay=delay,
                    )
                self._broadcast_later(vertex, round_number, delay)
                return
        self.broadcast_protocol.broadcast(vertex, round_number)

    def _broadcast_later(self, vertex: Vertex, round_number: Round, delay: SimTime) -> None:
        """Sit on an own proposal (lazy-leader behavior policies).

        The proposal is already persisted, so a crash before the delayed
        broadcast fires recovers into the normal re-broadcast path; the
        fire-time guards make the delayed event a no-op in that case
        (the rebuilt protocol instance owns the round by then).
        """
        protocol = self.broadcast_protocol

        def fire() -> None:
            if self.crashed or self.broadcast_protocol is not protocol:
                return
            protocol.broadcast(vertex, round_number)

        self.simulator.schedule(delay, fire)

    def _next_batch(self) -> Sequence:
        pool = self.transaction_pool
        size = len(pool)
        if size == 0:
            return ()
        limit = self.config.max_batch_size
        if size <= limit:
            # Drain wholesale: list(deque) runs in C, and the pool fits
            # one batch in the common (non-saturated) case.
            batch = list(pool)
            pool.clear()
            return batch
        popleft = pool.popleft
        return [popleft() for _ in range(limit)]

    def _start_anchor_timer(self, round_number: Round) -> None:
        leader = self.schedule_manager.leader_for_round(round_number)
        if leader == self.id:
            return
        if self.dag.vertex_of(round_number, leader) is not None:
            return

        def on_timeout() -> None:
            self._anchor_timer_handle = None
            if self.current_round != round_number:
                return
            self._anchor_timeout_expired = True
            self.leader_timeouts_suffered += 1
            self._maybe_advance()

        self._anchor_timer_round = round_number
        self._anchor_timer_handle = self.simulator.schedule(
            self.config.leader_timeout, on_timeout
        )

    def _maybe_advance(self) -> None:
        """Advance to the next round when the Bullshark conditions hold."""
        if not self.started or self.crashed:
            return
        if self._advance_handle is not None:
            return
        if self.current_round < self.dag.lowest_round:
            # State sync moved the DAG past the round this validator was
            # proposing in; rejoin the committee at the current frontier.
            frontier = self._highest_quorum_round()
            if frontier >= self.dag.lowest_round:
                self._enter_round(frontier + 1)
            return
        round_number = self.current_round
        if self.config.max_round is not None and round_number >= self.config.max_round:
            return
        # Our own vertex must have been certified and delivered back to us.
        if self.dag.vertex_of(round_number, self.id) is None:
            return
        if not self.dag.has_quorum_at(round_number):
            return
        if is_anchor_round(round_number) and not self._anchor_timeout_expired:
            leader = self.schedule_manager.leader_for_round(round_number)
            if leader != self.id and self.dag.vertex_of(round_number, leader) is None:
                return
        self._schedule_advance()

    def _schedule_advance(self) -> None:
        earliest = self.last_proposal_time + self.config.min_round_interval
        delay = max(0.0, earliest - self.simulator.now)
        if self.dag.has_quorum_at(self.current_round + 1):
            # A quorum has already finished the round *after* ours: we are
            # lagging behind the frontier (for example after recovering from
            # a crash, or after being started late).  Skip the pacing delay
            # so the proposal phase re-synchronizes with the rest of the
            # committee; in steady state this condition never holds.
            delay = 0.0

        def advance() -> None:
            self._advance_handle = None
            if self.crashed:
                return
            if self._anchor_timer_handle is not None:
                self.simulator.cancel(self._anchor_timer_handle)
                self._anchor_timer_handle = None
            # A validator that fell far behind (for example after
            # recovering from a crash) jumps directly past the highest
            # round for which it holds a quorum, instead of replaying
            # every round it missed one by one.
            next_round = self.current_round + 1
            highest_quorum = self._highest_quorum_round()
            if highest_quorum > next_round + 1:
                next_round = highest_quorum + 1
            self._enter_round(next_round)

        self._advance_handle = self.simulator.schedule(delay, advance)

    # -- message handling -----------------------------------------------------------------

    def _on_network_message(self, sender: ValidatorId, message) -> None:
        if self.crashed:
            return
        if not self.started:
            self._pre_start_buffer.append((sender, message))
            return
        # Exact-class dispatch; this runs once per delivered message, so
        # the handler map replaces a chain of isinstance checks through
        # the broadcast layer.  Unknown classes fall back to the broadcast
        # protocol's own dispatch (custom protocols in tests may accept
        # message types the map does not know about).  The identity check
        # rebuilds the map if something replaced ``broadcast_protocol``
        # directly instead of going through ``_rebuild_broadcast`` — the
        # map must never dispatch into a dead protocol instance.
        if self.broadcast_protocol is not self._handlers_protocol:
            self._message_handlers = self._build_message_handlers()
        handler = self._message_handlers.get(message.__class__)
        if handler is not None:
            handler(sender, message)
            return
        self.broadcast_protocol.handle_message(sender, message)

    def _build_message_handlers(self) -> Dict[type, Callable]:
        """Flat message-class dispatch map for the delivery hot path.

        Protocols without a dispatch map (Bracha) keep their
        ``handle_message`` entry point via the dispatch fallback.
        """
        handlers: Dict[type, Callable] = {}
        protocol_handlers = getattr(self.broadcast_protocol, "_handlers", None)
        if protocol_handlers is not None:
            handlers.update(protocol_handlers)
        handlers[FetchRequest] = self._handle_fetch_request
        handlers[FetchResponse] = self._handle_fetch_response_message
        self._handlers_protocol = self.broadcast_protocol
        return handlers

    def _handle_fetch_response_message(self, sender: ValidatorId, message) -> None:
        self._handle_fetch_response(message)

    def _on_broadcast_delivery(self, delivery: Delivery) -> None:
        vertex = delivery.payload
        if not isinstance(vertex, Vertex):
            return
        self._ingest_vertex(vertex)

    def _ingest_vertex(self, vertex: Vertex) -> None:
        inserted = self.dag.add(vertex)
        if not inserted and vertex.id not in self.dag:
            missing = self.dag.missing_parents(vertex)
            if missing:
                self._request_missing(missing, preferred_peer=vertex.source)

    # -- synchronizer (missing parent fetcher) ------------------------------------------------

    def _request_missing(self, missing, preferred_peer: ValidatorId) -> None:
        if self.config.certificate_piggyback:
            # Heal from the piggyback stash before spending a fetch
            # round-trip: a vertex id maps directly to the (origin,
            # round) of its certificate.  Healing a parent can promote
            # parked descendants (and recursively request *their*
            # missing parents), so the remaining set is re-filtered
            # against the DAG afterwards.
            recover = self.broadcast_protocol.recover_certificate
            dag = self.dag
            missing = [
                vertex_id
                for vertex_id in missing
                if not recover(vertex_id.source, vertex_id.round)
                and vertex_id not in dag
            ]
            if not missing:
                return
        now = self.simulator.now
        to_request = []
        for vertex_id in missing:
            last = self._fetch_requested.get(vertex_id)
            if last is not None and now - last < self.config.fetch_retry_interval:
                continue
            self._fetch_requested[vertex_id] = now
            to_request.append(vertex_id)
        if not to_request:
            return
        self.fetch_requests_sent += 1
        request = FetchRequest(requester=self.id, missing=tuple(to_request))
        target = preferred_peer if preferred_peer != self.id else self._random_peer()
        self.network.send(self.id, target, request)
        self._schedule_fetch_retry()

    def _schedule_fetch_retry(self) -> None:
        if self._fetch_timer is not None:
            return

        def retry() -> None:
            self._fetch_timer = None
            if self.crashed:
                return
            missing = self.dag.pending_missing()
            if not missing:
                self._fetch_requested.clear()
                return
            # Ask a random peer; the previous target may have crashed.
            self._fetch_requested.clear()
            self._request_missing(missing, preferred_peer=self._random_peer())

        self._fetch_timer = self.simulator.schedule(self.config.fetch_retry_interval, retry)

    def _random_peer(self) -> ValidatorId:
        peers = [validator for validator in self.committee.validators if validator != self.id]
        return self.simulator.rng.choice(peers)

    def _handle_fetch_request(self, sender: ValidatorId, request: FetchRequest) -> None:
        behavior = self.behavior
        if not behavior.transparent and not behavior.should_serve_fetch(sender):
            # Behavior policy: starve this peer's synchronizer.
            return
        found: List[Vertex] = []
        seen: set = set()
        for vertex_id in request.missing:
            vertex = self.dag.get(vertex_id)
            if vertex is None:
                continue
            if request.deep:
                for ancestor in self.dag.causal_history(vertex.id):
                    if ancestor.id not in seen:
                        seen.add(ancestor.id)
                        found.append(ancestor)
            elif vertex.id not in seen:
                seen.add(vertex.id)
                found.append(vertex)
        if found:
            response = FetchResponse(
                responder=self.id,
                vertices=tuple(found),
                responder_gc_round=self.dag.lowest_round,
                snapshot=self._consensus_snapshot() if request.deep else None,
            )
            self.network.send(self.id, sender, response)

    def _consensus_snapshot(self) -> ConsensusSnapshot:
        """Summarize committed state for a peer that may need state sync."""
        if isinstance(self.schedule_manager, HammerHeadScheduleManager):
            scores = self.schedule_manager.scores.as_dict()
            commits_in_epoch = self.schedule_manager.commits_in_epoch
        else:
            scores = {}
            commits_in_epoch = 0
        horizon = self.dag.lowest_round
        ordered_above_horizon = frozenset(
            vertex_id
            for vertex_id in self.consensus.ordered_vertices
            if vertex_id.round >= horizon
        )
        return ConsensusSnapshot(
            last_ordered_anchor_round=self.consensus.last_ordered_anchor_round,
            gc_round=horizon,
            schedules=tuple(self.schedule_manager.history),
            scores=scores,
            commits_in_epoch=commits_in_epoch,
            ordered_vertices=ordered_above_horizon,
            vote_accounting=self.schedule_manager.vote_accounting_snapshot(),
        )

    def _handle_fetch_response(self, response: FetchResponse) -> None:
        self._maybe_state_sync(response)
        for vertex in sorted(response.vertices, key=lambda vertex: vertex.round):
            self._ingest_vertex(vertex)
        self.dag.reconsider_pending()
        self._maybe_advance()

    def _maybe_state_sync(self, response: FetchResponse) -> None:
        """Fall back to state sync when the missing history was pruned.

        If the responder has already garbage-collected the rounds this
        validator is missing, vertex-by-vertex fetching can never complete.
        The production system downloads a certified checkpoint instead; the
        simulation models that by adopting the responder's committed
        position, ordered-vertex set, and schedule state, then resuming
        normal operation from the responder's GC horizon.
        """
        if response.responder_gc_round <= self.dag.highest_round() + 1:
            return
        snapshot = response.snapshot
        if snapshot is None:
            return
        self.consensus.fast_forward(snapshot.last_ordered_anchor_round)
        self.consensus.ordered_vertices.update(snapshot.ordered_vertices)
        self.schedule_manager.adopt_state(
            list(snapshot.schedules),
            dict(snapshot.scores),
            snapshot.commits_in_epoch,
            vote_accounting=getattr(snapshot, "vote_accounting", None),
        )
        # The adopted schedule history can change any round's leader, so
        # the incremental commit scan must re-derive its candidates.
        self.consensus.reset_candidates()
        self.dag.garbage_collect(snapshot.gc_round)
        self.dag.reconsider_pending()
        self._fetch_requested.clear()

    # -- DAG insertion reaction ---------------------------------------------------------------

    def _on_vertex_inserted(self, vertex: Vertex) -> None:
        self._persist_vertex(vertex)
        committed = self.consensus.process_vertex(vertex)
        if self.config.gc_depth and (committed or self.dag._stale_below_horizon):
            # The GC horizon only moves when a commit advanced the last
            # ordered round (or a state-sync straggler needs sweeping),
            # so the probe is skipped on the other ~95% of insertions.
            self.consensus.garbage_collect(keep_rounds=self.config.gc_depth)
        if vertex.round >= self.current_round - 1:
            self._maybe_advance()

    def _persist_vertex(self, vertex: Vertex) -> None:
        # Inlined ColumnFamily.put: one write per insertion.
        family = self._vertices_family
        family.writes += 1
        family._data[vertex.id] = vertex

    # -- convenience accessors -------------------------------------------------------------------

    def on_ordered(self, callback: Callable[[OrderedVertex], None]) -> None:
        self.consensus.on_ordered(callback)

    def on_commit(self, callback: Callable[[CommittedSubDag], None]) -> None:
        self.consensus.on_commit(callback)

    @property
    def ordered_count(self) -> int:
        return self.consensus.ordered_count

    @property
    def commit_count(self) -> int:
        return self.consensus.commit_count

    def describe(self) -> str:
        return (
            f"validator {self.id} (round {self.current_round}, "
            f"{self.commit_count} commits, {self.schedule_manager.describe()})"
        )
