"""The validator node: a full HammerHead/Bullshark participant.

A node owns a local DAG, a broadcast protocol instance, a consensus
engine, a schedule manager, a transaction pool, and a persistent store.
It reacts to simulated network messages and timer events; it never touches
wall-clock time, so a node can also be driven directly by unit tests.
"""

from repro.node.config import NodeConfig
from repro.node.validator import ValidatorNode
from repro.node.messages import FetchRequest, FetchResponse

__all__ = ["NodeConfig", "ValidatorNode", "FetchRequest", "FetchResponse"]
