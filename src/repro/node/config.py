"""Node configuration.

The defaults model a production validator similar to the paper's testbed;
experiment presets (:mod:`repro.sim.presets`) adjust the batch size and
round pacing per committee size so that the simulated system saturates in
the same region as the paper's deployment.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import ConfigurationError
from repro.types import SimTime


@dataclasses.dataclass
class NodeConfig:
    """Tunable parameters of a validator node."""

    # Maximum number of transactions carried by one vertex.
    max_batch_size: int = 250

    # Minimum time between two consecutive vertex proposals by the same
    # validator.  It models per-round processing cost (certificate
    # verification grows with committee size) and, like the production
    # system's ``min_header_delay``, keeps the round long enough for the
    # certificates of slower, more remote validators to be included, which
    # is what gives the DAG its fairness.
    min_round_interval: SimTime = 0.45

    # How long a validator waits for the anchor (leader vertex) of an even
    # round before advancing without it.  This is the Bullshark leader
    # timeout; it is the mechanism through which crashed leaders hurt the
    # baseline protocol.
    leader_timeout: SimTime = 1.5

    # Delay before re-requesting missing parents from another peer.
    fetch_retry_interval: SimTime = 1.0

    # Number of ordered anchor rounds to keep in the DAG before garbage
    # collection; 0 disables GC.
    gc_depth: int = 50

    # Which broadcast implementation to use: "certified" (Narwhal-style,
    # O(n) messages per vertex) or "bracha" (echo/ready, O(n^2)).
    broadcast: str = "certified"

    # Coalesce the certificates a validator emits for a round into one
    # CertificateBatch per peer (the large-committee fast path).  The
    # batched and unbatched wire formats consume identical RNG/event
    # sequences, so runs are byte-identical either way; the flag exists
    # for the differential property tests and as an escape hatch.
    certificate_batching: bool = True

    # Relay recently collected certificates on the propose fan-out so a
    # certificate lost to a loss window heals passively instead of
    # waiting for a fetch timeout (see
    # :mod:`repro.rbc.certified`).  Off by default: relayed certificates
    # are only consulted at the synchronizer's fetch trigger, so
    # loss-free runs are byte-identical either way, but lossy-run
    # behavior (and thus their digests) changes with the flag on.
    # Requires the certified broadcast.
    certificate_piggyback: bool = False

    # Scoring rule driving this node's reputation accounting, by registry
    # name (see :mod:`repro.core.scoring`).  The simulation runner's
    # schedule-manager factory reads this field (after copying
    # ``ExperimentConfig.scoring`` into it), so it is the per-node knob a
    # standalone deployment sets to pick its rule.
    scoring_rule: str = "hammerhead"

    # Record the full ordered sequence in memory (needed by safety checks;
    # disabled for very large simulations).
    record_sequence: bool = True

    # Upper bound on the round number, as a safety valve for runaway
    # simulations; ``None`` means unbounded.
    max_round: Optional[int] = None

    def validate(self) -> "NodeConfig":
        """Check internal consistency and return ``self``."""
        if self.max_batch_size < 0:
            raise ConfigurationError("max_batch_size must be non-negative")
        if self.min_round_interval < 0:
            raise ConfigurationError("min_round_interval must be non-negative")
        if self.leader_timeout < 0:
            raise ConfigurationError("leader_timeout must be non-negative")
        if self.fetch_retry_interval <= 0:
            raise ConfigurationError("fetch_retry_interval must be positive")
        if self.gc_depth < 0:
            raise ConfigurationError("gc_depth must be non-negative")
        if self.broadcast not in ("certified", "bracha"):
            raise ConfigurationError(
                f"unknown broadcast implementation {self.broadcast!r}"
            )
        if self.certificate_piggyback and self.broadcast != "certified":
            raise ConfigurationError(
                "certificate_piggyback requires the certified broadcast"
            )
        # Imported here: the scoring registry sits above the node layer in
        # the package graph, and config validation is not a hot path.
        from repro.core.scoring import scoring_rule_names

        if self.scoring_rule not in scoring_rule_names():
            raise ConfigurationError(
                f"unknown scoring rule {self.scoring_rule!r} "
                f"(known: {', '.join(scoring_rule_names())})"
            )
        if self.max_round is not None and self.max_round < 1:
            raise ConfigurationError("max_round must be at least 1")
        return self

    def scaled_for_committee(self, committee_size: int) -> "NodeConfig":
        """Derive a config whose round pacing reflects the committee size.

        Larger committees verify more certificates per round; the paper's
        100-validator runs peak at a slightly lower throughput than the
        10- and 50-validator runs for this reason.
        """
        if committee_size <= 0:
            raise ConfigurationError("committee size must be positive")
        per_certificate_cost = 0.0008
        return dataclasses.replace(
            self,
            min_round_interval=self.min_round_interval + per_certificate_cost * committee_size,
        )
