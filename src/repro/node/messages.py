"""Node-level wire messages (outside the broadcast layer).

The synchronizer messages mirror Narwhal's certificate fetcher: a
validator that receives a vertex referencing parents it has not seen asks
the vertex's source (which, having produced the child, must hold the
parents) for the missing vertices.  When the requested history has been
garbage-collected everywhere, the response carries a consensus snapshot
instead, which models the production system's checkpoint-based state sync.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Optional, Tuple

from repro.dag.vertex import Vertex
from repro.schedule.base import LeaderSchedule
from repro.types import Round, ValidatorId, VertexId


@dataclasses.dataclass(frozen=True)
class ConsensusSnapshot:
    """A summary of a validator's committed state, used for state sync.

    In production this information is carried by certified checkpoints; the
    simulation treats the serving peer's snapshot as trustworthy, which is
    sound in crash-fault executions (the experiments that exercise state
    sync) because the serving peer is honest.
    """

    last_ordered_anchor_round: Round
    gc_round: Round
    schedules: Tuple[LeaderSchedule, ...]
    scores: Dict[ValidatorId, float]
    commits_in_epoch: int
    ordered_vertices: FrozenSet[VertexId]
    # Vote accounting of ratio-style scoring rules (cast counts, expected
    # counts, ordered-leader rounds), or ``None`` under the count-based
    # rules — see ``HammerHeadScheduleManager.vote_accounting_snapshot``.
    vote_accounting: Optional[tuple] = None


@dataclasses.dataclass(frozen=True)
class FetchRequest:
    """Ask a peer for the vertices identified by ``missing``.

    When ``deep`` is set the responder also includes the causal history of
    the requested vertices (bounded by its garbage-collection horizon),
    which lets a recovering validator catch up in one round trip instead of
    walking the DAG one round per request.
    """

    requester: ValidatorId
    missing: Tuple[VertexId, ...]
    deep: bool = True


@dataclasses.dataclass(frozen=True)
class FetchResponse:
    """Reply to a :class:`FetchRequest` with the vertices the peer holds.

    ``responder_gc_round`` is the responder's garbage-collection horizon:
    rounds below it have been pruned and can never be served.  A requester
    that needs older history falls back to state sync (see
    ``BullsharkConsensus.fast_forward``).
    """

    responder: ValidatorId
    vertices: Tuple[Vertex, ...]
    responder_gc_round: int = 0
    snapshot: Optional[ConsensusSnapshot] = None
